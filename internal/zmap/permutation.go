// Package zmap implements a ZMap-compatible scanner core: address iteration
// via a random cyclic multiplicative group permutation (so every scan emits
// targets in a pseudorandom order with O(1) state, exactly as ZMap does),
// sharding, SipHash validation cookies embedded in TCP sequence numbers,
// CIDR block/allowlists, and multi-probe transmission on a virtual clock.
//
// The scanner sends and receives real IPv4+TCP packet bytes through a
// PacketSink; the simulation fabric is one sink, and the seam is where a
// raw-socket/pcap sink would attach in a deployment against real networks.
package zmap

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Permutation iterates the multiplicative group of integers modulo a prime
// p just above the scan space, visiting every value in [1, p) exactly once
// in a seed-determined pseudorandom order. Values are mapped to addresses
// as value-1; values exceeding the space are skipped (ZMap's approach for
// the 2^32 space, generalized to any space size).
type Permutation struct {
	p         uint64 // group modulus (prime)
	g         uint64 // generator of the full group
	r         uint64 // key-derived starting offset (first = g^(r+shard))
	first     uint64 // starting element for this shard
	step      uint64 // g^shards: stride between this shard's elements
	stepShoup uint64 // floor(step<<64 / p): Shoup factor for the walk stride
	space     uint64 // number of valid addresses [0, space)
	shardLen  uint64 // group elements this shard owns
	shard     uint64
	shards    uint64

	skipOnce sync.Once
	skips    []uint64 // sorted walk indices of out-of-space elements
}

// NewPermutation builds the permutation for a space of 2^spaceBits
// addresses, seeded by key, for the given shard of shards total. All
// scanners in a synchronized study share the key, so they visit the same
// addresses at the same position in the order — the paper starts each scan
// with the same ZMap seed for exactly this reason.
func NewPermutation(key rng.Key, spaceBits uint8, shard, shards int) (*Permutation, error) {
	if spaceBits == 0 || spaceBits > 32 {
		return nil, fmt.Errorf("zmap: space bits %d out of range", spaceBits)
	}
	return NewPermutationN(key, uint64(1)<<spaceBits, shard, shards)
}

// NewPermutationN is NewPermutation over an arbitrary space of n values
// [0, n) — the form hitlist scans use, where n is a target-list length
// rather than a power of two. The walk indices are uint64 throughout; n may
// be anything up to 2^62 (the modulus must stay below 2^63 for the Shoup
// reduction), though real uses are a 2^32 sweep space or a far smaller
// hitlist.
func NewPermutationN(key rng.Key, n uint64, shard, shards int) (*Permutation, error) {
	if n == 0 || n > 1<<62 {
		return nil, fmt.Errorf("zmap: space size %d out of range", n)
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("zmap: bad shard %d/%d", shard, shards)
	}
	space := n
	p := nextPrime(space + 1)
	g, err := findGenerator(key, p)
	if err != nil {
		return nil, err
	}
	// Shard s visits g^(r+s), g^(r+s+shards), ... for a key-derived
	// offset r: disjoint cosets covering the whole group.
	r := key.Derive("offset").Uint64(0)%(p-1) + 1
	first := mulmodPow(g, r, p)
	first = mulmod(first, mulmodPow(g, uint64(shard), p), p)
	step := mulmodPow(g, uint64(shards), p)
	total := p - 1
	max := total / uint64(shards)
	if uint64(shard) < total%uint64(shards) {
		max++
	}
	return &Permutation{
		p: p, g: g, r: r, first: first, step: step, stepShoup: shoupFactor(step, p),
		space: space, shardLen: max, shard: uint64(shard), shards: uint64(shards),
	}, nil
}

// Space returns the number of addresses in the scan space.
func (pm *Permutation) Space() uint64 { return pm.space }

// Modulus returns the group modulus (for tests).
func (pm *Permutation) Modulus() uint64 { return pm.p }

// Iterator walks this shard's slice of the permutation.
type Iterator struct {
	pm      *Permutation
	current uint64
	emitted uint64
	max     uint64 // group elements this shard owns
}

// Iterate returns an iterator over this permutation's shard.
func (pm *Permutation) Iterate() *Iterator {
	return &Iterator{pm: pm, current: pm.first, max: pm.shardLen}
}

// Next returns the next address in the shard, or ok=false when exhausted.
// Group elements mapping outside the space are transparently skipped.
func (it *Iterator) Next() (addr uint32, ok bool) {
	a, _, ok := it.NextIndexed()
	return a, ok
}

// NextIndexed is Next also reporting the address's element index within
// this shard's walk, counting the transparently skipped out-of-space
// elements. Sub-shard iteration uses the index to recover the position a
// single full walk would have assigned the address (see SkipIndices).
func (it *Iterator) NextIndexed() (addr uint32, elem uint64, ok bool) {
	pm := it.pm
	for it.emitted < it.max {
		v := it.current
		it.current = mulmodShoup(it.current, pm.step, pm.stepShoup, pm.p)
		e := it.emitted
		it.emitted++
		a := v - 1
		if a < pm.space {
			return uint32(a), e, true
		}
	}
	return 0, 0, false
}

// NextBatch fills buf with the next addresses of the shard's walk and
// returns how many it wrote: len(buf) until the walk nears exhaustion, then
// one final partial batch, then 0. The sequence is exactly the one repeated
// Next calls yield — batching only amortizes the per-address call overhead
// so the sweep's permutation walk, context check, and telemetry flush run
// once per batch. The buffer is caller-owned and reused across calls.
func (it *Iterator) NextBatch(buf []uint32) int {
	pm := it.pm
	cur, emitted := it.current, it.emitted
	step, shoup, p, space, max := pm.step, pm.stepShoup, pm.p, pm.space, it.max
	n := 0
	for n < len(buf) && emitted < max {
		v := cur
		cur = mulmodShoup(cur, step, shoup, p)
		emitted++
		if a := v - 1; a < space {
			buf[n] = uint32(a)
			n++
		}
	}
	it.current, it.emitted = cur, emitted
	return n
}

// NextBatch64 is NextBatch emitting full-width walk values — the form
// hitlist iteration uses, where a value is an index into a target list
// rather than an IPv4 address.
func (it *Iterator) NextBatch64(buf []uint64) int {
	pm := it.pm
	cur, emitted := it.current, it.emitted
	step, shoup, p, space, max := pm.step, pm.stepShoup, pm.p, pm.space, it.max
	n := 0
	for n < len(buf) && emitted < max {
		v := cur
		cur = mulmodShoup(cur, step, shoup, p)
		emitted++
		if a := v - 1; a < space {
			buf[n] = a
			n++
		}
	}
	it.current, it.emitted = cur, emitted
	return n
}

// NextIndexedBatch64 is NextIndexedBatch with full-width walk values (see
// NextBatch64). vals and elems must be the same length.
func (it *Iterator) NextIndexedBatch64(vals, elems []uint64) int {
	pm := it.pm
	cur, emitted := it.current, it.emitted
	step, shoup, p, space, max := pm.step, pm.stepShoup, pm.p, pm.space, it.max
	n := 0
	for n < len(vals) && emitted < max {
		v := cur
		cur = mulmodShoup(cur, step, shoup, p)
		e := emitted
		emitted++
		if a := v - 1; a < space {
			vals[n] = a
			elems[n] = e
			n++
		}
	}
	it.current, it.emitted = cur, emitted
	return n
}

// NextIndexedBatch is NextBatch also recording each address's element index
// within this shard's walk in elems (the NextIndexed batch form). addrs and
// elems must be the same length.
func (it *Iterator) NextIndexedBatch(addrs []uint32, elems []uint64) int {
	pm := it.pm
	cur, emitted := it.current, it.emitted
	step, shoup, p, space, max := pm.step, pm.stepShoup, pm.p, pm.space, it.max
	n := 0
	for n < len(addrs) && emitted < max {
		v := cur
		cur = mulmodShoup(cur, step, shoup, p)
		e := emitted
		emitted++
		if a := v - 1; a < space {
			addrs[n] = uint32(a)
			elems[n] = e
			n++
		}
	}
	it.current, it.emitted = cur, emitted
	return n
}

// SkipIndices returns the sorted element indices within this shard's walk
// whose group value maps outside the address space (the values Next skips).
// A sub-shard walker combines these with its parent element index to
// reconstruct the exact scan position — and therefore the exact virtual
// probe time — the serial walk assigns each address, which is what keeps a
// sharded sweep bit-identical to a serial one.
//
// The out-of-space values are the few integers in [space+1, p), located in
// the walk by a baby-step/giant-step discrete log; the cost is
// O(√p + gap·√p) once per permutation, negligible next to the scan itself.
func (pm *Permutation) SkipIndices() []uint64 {
	pm.skipOnce.Do(func() {
		n := pm.p - 1
		if n == pm.space {
			return // p = space+1: every group value maps in-space
		}
		// Baby table: g^j -> j for j in [0, mb).
		mb := uint64(math.Sqrt(float64(n))) + 1
		baby := make(map[uint64]uint64, mb)
		acc := uint64(1)
		for j := uint64(0); j < mb; j++ {
			baby[acc] = j
			acc = mulmod(acc, pm.g, pm.p)
		}
		giant := mulmodPow(pm.g, n-mb, pm.p) // g^(-mb)
		dlog := func(v uint64) uint64 {
			gamma := v
			for i := uint64(0); i <= n/mb; i++ {
				if j, ok := baby[gamma]; ok {
					return i*mb + j
				}
				gamma = mulmod(gamma, giant, pm.p)
			}
			panic("zmap: discrete log not found (g is not a generator)")
		}
		for v := pm.space + 1; v < pm.p; v++ {
			// Global walk index m of value g^((r+m) mod n).
			e := dlog(v)
			m := (e + n - pm.r%n) % n
			if m%pm.shards == pm.shard {
				pm.skips = append(pm.skips, (m-pm.shard)/pm.shards)
			}
		}
		sort.Slice(pm.skips, func(i, j int) bool { return pm.skips[i] < pm.skips[j] })
	})
	return pm.skips
}

// skipsBefore returns how many of the sorted skip indices are < elem.
func skipsBefore(skips []uint64, elem uint64) uint64 {
	return uint64(sort.Search(len(skips), func(i int) bool { return skips[i] >= elem }))
}

// mulmod computes a*b mod m without overflow using the 128-bit multiply
// and divide intrinsics (single hardware instructions on amd64/arm64). Any
// modulus up to 2^63 works; the walk moduli here are ≤ 2^32+15.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// shoupFactor precomputes floor(b·2^64 / m) for a fixed multiplicand b < m,
// the constant mulmodShoup needs. Requires m < 2^63 so the quotient fits.
func shoupFactor(b, m uint64) uint64 {
	q, _ := bits.Div64(b, 0, m)
	return q
}

// mulmodShoup computes a·b mod m for a fixed b with precomputed
// bShoup = shoupFactor(b, m), using Shoup's trick: two multiplies and a
// conditional subtract, no division at all. With q = floor(a·bShoup / 2^64),
// a·b − q·m is in [0, 2m), so one subtract finishes the reduction. This is
// what keeps the permutation walk cheap once the modulus outgrows 32 bits
// (SpaceBits=32 ⇒ p > 2^32) and per-step division would dominate the sweep.
// Requires a < m, b < m, m < 2^63.
func mulmodShoup(a, b, bShoup, m uint64) uint64 {
	q, _ := bits.Mul64(a, bShoup)
	r := a*b - q*m // wraps mod 2^64; the true remainder survives
	if r >= m {
		r -= m
	}
	return r
}

// mulmodPow computes g^e mod m by square-and-multiply.
func mulmodPow(g, e, m uint64) uint64 {
	result := uint64(1)
	base := g % m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, base, m)
		}
		base = mulmod(base, base, m)
		e >>= 1
	}
	return result
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if isPrime(n) {
			return n
		}
	}
}

// isPrime is deterministic trial division; moduli here are < 2^33, so this
// is at most ~2^17 iterations and runs once per scan.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	for d := uint64(17); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// factorize returns the distinct prime factors of n.
func factorize(n uint64) []uint64 {
	var fs []uint64
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			fs = append(fs, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// findGenerator picks a seed-determined generator of the multiplicative
// group mod p: a candidate g is a generator iff g^((p-1)/q) != 1 for every
// prime factor q of p-1 (ZMap selects its generator the same way).
func findGenerator(key rng.Key, p uint64) (uint64, error) {
	factors := factorize(p - 1)
	stream := key.Derive("generator").Stream(p)
	for tries := 0; tries < 10000; tries++ {
		g := stream.Uint64n(p-3) + 2 // in [2, p-1)
		ok := true
		for _, q := range factors {
			if mulmodPow(g, (p-1)/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("zmap: no generator found for p=%d", p)
}
