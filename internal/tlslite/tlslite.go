// Package tlslite implements the TLS 1.2 wire format needed for a handshake
// grab: the record layer, ClientHello (with the cipher suites of modern
// Chrome, as the paper's ZGrab configuration sends), ServerHello, and the
// Certificate message carried as opaque DER blobs. The study's HTTPS grab
// considers a host accessible once the server's handshake flight parses, so
// no key exchange or record encryption is implemented — but every byte
// exchanged is valid TLS 1.2 that a real stack would produce or accept.
package tlslite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/rng"
)

// Record content types.
const (
	RecordHandshake = 22
	RecordAlert     = 21
)

// Handshake message types.
const (
	TypeClientHello     = 1
	TypeServerHello     = 2
	TypeCertificate     = 11
	TypeServerHelloDone = 14
)

// VersionTLS12 is the wire version of TLS 1.2.
const VersionTLS12 = 0x0303

// ChromeTLS12Suites are the TLS 1.2 cipher suites offered by modern Chrome,
// which the paper's methodology uses for the HTTPS handshake.
var ChromeTLS12Suites = []uint16{
	0xc02b, // ECDHE-ECDSA-AES128-GCM-SHA256
	0xc02f, // ECDHE-RSA-AES128-GCM-SHA256
	0xc02c, // ECDHE-ECDSA-AES256-GCM-SHA384
	0xc030, // ECDHE-RSA-AES256-GCM-SHA384
	0xcca9, // ECDHE-ECDSA-CHACHA20-POLY1305
	0xcca8, // ECDHE-RSA-CHACHA20-POLY1305
	0xc013, // ECDHE-RSA-AES128-CBC-SHA
	0xc014, // ECDHE-RSA-AES256-CBC-SHA
	0x009c, // RSA-AES128-GCM-SHA256
	0x009d, // RSA-AES256-GCM-SHA384
	0x002f, // RSA-AES128-CBC-SHA
	0x0035, // RSA-AES256-CBC-SHA
}

// Limits on untrusted input.
const (
	MaxRecordLen    = 1<<14 + 2048
	MaxHandshakeLen = 1 << 18
)

// Errors.
var (
	ErrMalformed    = errors.New("tlslite: malformed message")
	ErrRecordTooBig = errors.New("tlslite: record exceeds maximum length")
	ErrAlert        = errors.New("tlslite: received fatal alert")
)

// ClientHello is the first client flight.
type ClientHello struct {
	Version      uint16
	Random       [32]byte
	SessionID    []byte
	CipherSuites []uint16
	ServerName   string // SNI extension, empty to omit
}

// ServerHello is the server's handshake response.
type ServerHello struct {
	Version     uint16
	Random      [32]byte
	SessionID   []byte
	CipherSuite uint16
	Compression uint8
}

// Certificate carries the server certificate chain as opaque DER blobs.
type Certificate struct {
	Chain [][]byte
}

// NewClientHello builds a Chrome-shaped ClientHello with a random derived
// from key.
func NewClientHello(key rng.Key, serverName string) *ClientHello {
	ch := &ClientHello{
		Version:      VersionTLS12,
		CipherSuites: ChromeTLS12Suites,
		ServerName:   serverName,
	}
	s := key.Stream(0x636868) // "chh"
	for i := 0; i < 32; i += 8 {
		binary.BigEndian.PutUint64(ch.Random[i:], s.Uint64())
	}
	return ch
}

// --- record layer ---

// WriteRecord frames payload as one TLS record.
func WriteRecord(w io.Writer, contentType uint8, payload []byte) error {
	if len(payload) > MaxRecordLen {
		return ErrRecordTooBig
	}
	hdr := [5]byte{contentType, byte(VersionTLS12 >> 8), byte(VersionTLS12 & 0xff)}
	binary.BigEndian.PutUint16(hdr[3:], uint16(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRecord reads one TLS record, returning its content type and payload.
func ReadRecord(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint16(hdr[3:])
	if int(n) > MaxRecordLen {
		return 0, nil, ErrRecordTooBig
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// HandshakeReader assembles handshake messages across records.
type HandshakeReader struct {
	r   io.Reader
	buf []byte
}

// NewHandshakeReader returns a reader over r.
func NewHandshakeReader(r io.Reader) *HandshakeReader {
	return &HandshakeReader{r: r}
}

// Next returns the next handshake message (type and body). A fatal alert
// record yields ErrAlert.
func (h *HandshakeReader) Next() (uint8, []byte, error) {
	for len(h.buf) < 4 {
		if err := h.fill(); err != nil {
			return 0, nil, err
		}
	}
	msgType := h.buf[0]
	msgLen := int(h.buf[1])<<16 | int(h.buf[2])<<8 | int(h.buf[3])
	if msgLen > MaxHandshakeLen {
		return 0, nil, ErrMalformed
	}
	for len(h.buf) < 4+msgLen {
		if err := h.fill(); err != nil {
			return 0, nil, err
		}
	}
	body := h.buf[4 : 4+msgLen]
	h.buf = h.buf[4+msgLen:]
	return msgType, body, nil
}

func (h *HandshakeReader) fill() error {
	ct, payload, err := ReadRecord(h.r)
	if err != nil {
		return err
	}
	switch ct {
	case RecordHandshake:
		h.buf = append(h.buf, payload...)
		return nil
	case RecordAlert:
		return ErrAlert
	default:
		return fmt.Errorf("tlslite: unexpected record type %d", ct)
	}
}

// writeHandshake frames body as a handshake message in one record.
func writeHandshake(w io.Writer, msgType uint8, body []byte) error {
	msg := make([]byte, 4+len(body))
	msg[0] = msgType
	msg[1] = byte(len(body) >> 16)
	msg[2] = byte(len(body) >> 8)
	msg[3] = byte(len(body))
	copy(msg[4:], body)
	return WriteRecord(w, RecordHandshake, msg)
}

// --- ClientHello ---

// Marshal encodes the ClientHello body (without the handshake header).
func (ch *ClientHello) Marshal() []byte {
	var b []byte
	b = append(b, byte(ch.Version>>8), byte(ch.Version))
	b = append(b, ch.Random[:]...)
	b = append(b, byte(len(ch.SessionID)))
	b = append(b, ch.SessionID...)
	b = append(b, byte(len(ch.CipherSuites)*2>>8), byte(len(ch.CipherSuites)*2))
	for _, cs := range ch.CipherSuites {
		b = append(b, byte(cs>>8), byte(cs))
	}
	b = append(b, 1, 0) // compression: null only
	// Extensions.
	var ext []byte
	if ch.ServerName != "" {
		ext = append(ext, sniExtension(ch.ServerName)...)
	}
	b = append(b, byte(len(ext)>>8), byte(len(ext)))
	b = append(b, ext...)
	return b
}

func sniExtension(name string) []byte {
	// extension type 0, server_name_list with one host_name entry.
	inner := make([]byte, 0, len(name)+5)
	inner = append(inner, 0) // name_type host_name
	inner = append(inner, byte(len(name)>>8), byte(len(name)))
	inner = append(inner, name...)
	list := make([]byte, 0, len(inner)+2)
	list = append(list, byte(len(inner)>>8), byte(len(inner)))
	list = append(list, inner...)
	ext := make([]byte, 0, len(list)+4)
	ext = append(ext, 0, 0) // type server_name
	ext = append(ext, byte(len(list)>>8), byte(len(list)))
	ext = append(ext, list...)
	return ext
}

// ParseClientHello decodes a ClientHello body.
func ParseClientHello(b []byte) (*ClientHello, error) {
	ch := &ClientHello{}
	if len(b) < 2+32+1 {
		return nil, ErrMalformed
	}
	ch.Version = binary.BigEndian.Uint16(b)
	copy(ch.Random[:], b[2:34])
	b = b[34:]
	sidLen := int(b[0])
	if len(b) < 1+sidLen+2 {
		return nil, ErrMalformed
	}
	ch.SessionID = append([]byte(nil), b[1:1+sidLen]...)
	b = b[1+sidLen:]
	csLen := int(binary.BigEndian.Uint16(b))
	if csLen%2 != 0 || len(b) < 2+csLen+1 {
		return nil, ErrMalformed
	}
	for i := 0; i < csLen; i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(b[2+i:]))
	}
	b = b[2+csLen:]
	compLen := int(b[0])
	if len(b) < 1+compLen {
		return nil, ErrMalformed
	}
	b = b[1+compLen:]
	// Extensions (optional).
	if len(b) >= 2 {
		extLen := int(binary.BigEndian.Uint16(b))
		if len(b) < 2+extLen {
			return nil, ErrMalformed
		}
		ext := b[2 : 2+extLen]
		for len(ext) >= 4 {
			typ := binary.BigEndian.Uint16(ext)
			l := int(binary.BigEndian.Uint16(ext[2:]))
			if len(ext) < 4+l {
				return nil, ErrMalformed
			}
			if typ == 0 { // server_name
				if name, err := parseSNI(ext[4 : 4+l]); err == nil {
					ch.ServerName = name
				}
			}
			ext = ext[4+l:]
		}
	}
	return ch, nil
}

func parseSNI(b []byte) (string, error) {
	if len(b) < 2 {
		return "", ErrMalformed
	}
	listLen := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+listLen || listLen < 3 {
		return "", ErrMalformed
	}
	entry := b[2 : 2+listLen]
	if entry[0] != 0 {
		return "", ErrMalformed
	}
	n := int(binary.BigEndian.Uint16(entry[1:]))
	if len(entry) < 3+n {
		return "", ErrMalformed
	}
	return string(entry[3 : 3+n]), nil
}

// WriteClientHello sends the ClientHello as a handshake record.
func (ch *ClientHello) Write(w io.Writer) error {
	return writeHandshake(w, TypeClientHello, ch.Marshal())
}

// --- ServerHello ---

// Marshal encodes the ServerHello body.
func (sh *ServerHello) Marshal() []byte {
	var b []byte
	b = append(b, byte(sh.Version>>8), byte(sh.Version))
	b = append(b, sh.Random[:]...)
	b = append(b, byte(len(sh.SessionID)))
	b = append(b, sh.SessionID...)
	b = append(b, byte(sh.CipherSuite>>8), byte(sh.CipherSuite))
	b = append(b, sh.Compression)
	return b
}

// ParseServerHello decodes a ServerHello body.
func ParseServerHello(b []byte) (*ServerHello, error) {
	sh := &ServerHello{}
	if len(b) < 2+32+1 {
		return nil, ErrMalformed
	}
	sh.Version = binary.BigEndian.Uint16(b)
	copy(sh.Random[:], b[2:34])
	b = b[34:]
	sidLen := int(b[0])
	if len(b) < 1+sidLen+3 {
		return nil, ErrMalformed
	}
	sh.SessionID = append([]byte(nil), b[1:1+sidLen]...)
	b = b[1+sidLen:]
	sh.CipherSuite = binary.BigEndian.Uint16(b)
	sh.Compression = b[2]
	return sh, nil
}

// Write sends the ServerHello as a handshake record.
func (sh *ServerHello) Write(w io.Writer) error {
	return writeHandshake(w, TypeServerHello, sh.Marshal())
}

// --- Certificate ---

// Marshal encodes the Certificate body.
func (c *Certificate) Marshal() []byte {
	var inner []byte
	for _, cert := range c.Chain {
		inner = append(inner, byte(len(cert)>>16), byte(len(cert)>>8), byte(len(cert)))
		inner = append(inner, cert...)
	}
	b := make([]byte, 0, 3+len(inner))
	b = append(b, byte(len(inner)>>16), byte(len(inner)>>8), byte(len(inner)))
	return append(b, inner...)
}

// ParseCertificate decodes a Certificate body.
func ParseCertificate(b []byte) (*Certificate, error) {
	if len(b) < 3 {
		return nil, ErrMalformed
	}
	total := int(b[0])<<16 | int(b[1])<<8 | int(b[2])
	if len(b) < 3+total {
		return nil, ErrMalformed
	}
	inner := b[3 : 3+total]
	c := &Certificate{}
	for len(inner) > 0 {
		if len(inner) < 3 {
			return nil, ErrMalformed
		}
		n := int(inner[0])<<16 | int(inner[1])<<8 | int(inner[2])
		if len(inner) < 3+n {
			return nil, ErrMalformed
		}
		c.Chain = append(c.Chain, append([]byte(nil), inner[3:3+n]...))
		inner = inner[3+n:]
	}
	return c, nil
}

// Write sends the Certificate as a handshake record.
func (c *Certificate) Write(w io.Writer) error {
	return writeHandshake(w, TypeCertificate, c.Marshal())
}

// WriteServerHelloDone sends the (empty) ServerHelloDone message.
func WriteServerHelloDone(w io.Writer) error {
	return writeHandshake(w, TypeServerHelloDone, nil)
}

// WriteAlert sends a two-byte alert record (level, description).
func WriteAlert(w io.Writer, level, desc uint8) error {
	return WriteRecord(w, RecordAlert, []byte{level, desc})
}
