package tlslite

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/rng"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4}
	if err := WriteRecord(&buf, RecordHandshake, payload); err != nil {
		t.Fatal(err)
	}
	ct, got, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ct != RecordHandshake || !bytes.Equal(got, payload) {
		t.Errorf("record = %d %v", ct, got)
	}
}

func TestRecordRejectsOversize(t *testing.T) {
	if err := WriteRecord(io.Discard, RecordHandshake, make([]byte, MaxRecordLen+1)); err != ErrRecordTooBig {
		t.Errorf("write err = %v", err)
	}
}

func TestClientHelloRoundTrip(t *testing.T) {
	ch := NewClientHello(rng.NewKey(1).Derive("grab"), "198.51.100.9")
	parsed, err := ParseClientHello(ch.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Version != VersionTLS12 {
		t.Errorf("version = %#x", parsed.Version)
	}
	if parsed.Random != ch.Random {
		t.Error("random mismatch")
	}
	if len(parsed.CipherSuites) != len(ChromeTLS12Suites) {
		t.Fatalf("suites = %d", len(parsed.CipherSuites))
	}
	for i, cs := range parsed.CipherSuites {
		if cs != ChromeTLS12Suites[i] {
			t.Errorf("suite %d = %#x, want %#x", i, cs, ChromeTLS12Suites[i])
		}
	}
	if parsed.ServerName != "198.51.100.9" {
		t.Errorf("SNI = %q", parsed.ServerName)
	}
}

func TestClientHelloWithoutSNI(t *testing.T) {
	ch := NewClientHello(rng.NewKey(2), "")
	parsed, err := ParseClientHello(ch.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ServerName != "" {
		t.Errorf("SNI = %q, want empty", parsed.ServerName)
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{Version: VersionTLS12, CipherSuite: 0xc02f, SessionID: []byte{9, 9}}
	sh.Random[0] = 0xaa
	parsed, err := ParseServerHello(sh.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.CipherSuite != 0xc02f || parsed.Random[0] != 0xaa || len(parsed.SessionID) != 2 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestCertificateRoundTrip(t *testing.T) {
	c := &Certificate{Chain: [][]byte{{1, 2, 3}, {4, 5}}}
	parsed, err := ParseCertificate(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Chain) != 2 || !bytes.Equal(parsed.Chain[0], []byte{1, 2, 3}) || !bytes.Equal(parsed.Chain[1], []byte{4, 5}) {
		t.Errorf("chain = %v", parsed.Chain)
	}
}

func TestFullHandshakeFlightOverWire(t *testing.T) {
	// Client writes ClientHello; server answers ServerHello +
	// Certificate + ServerHelloDone; client parses all three.
	var wire bytes.Buffer
	ch := NewClientHello(rng.NewKey(3), "host")
	if err := ch.Write(&wire); err != nil {
		t.Fatal(err)
	}
	hr := NewHandshakeReader(&wire)
	typ, body, err := hr.Next()
	if err != nil || typ != TypeClientHello {
		t.Fatalf("server read CH: %d %v", typ, err)
	}
	if _, err := ParseClientHello(body); err != nil {
		t.Fatal(err)
	}

	var resp bytes.Buffer
	sh := &ServerHello{Version: VersionTLS12, CipherSuite: ChromeTLS12Suites[1]}
	if err := sh.Write(&resp); err != nil {
		t.Fatal(err)
	}
	cert := &Certificate{Chain: [][]byte{bytes.Repeat([]byte{0x30}, 800)}}
	if err := cert.Write(&resp); err != nil {
		t.Fatal(err)
	}
	if err := WriteServerHelloDone(&resp); err != nil {
		t.Fatal(err)
	}

	cr := NewHandshakeReader(&resp)
	wantTypes := []uint8{TypeServerHello, TypeCertificate, TypeServerHelloDone}
	for _, want := range wantTypes {
		typ, body, err := cr.Next()
		if err != nil {
			t.Fatalf("reading type %d: %v", want, err)
		}
		if typ != want {
			t.Fatalf("type = %d, want %d", typ, want)
		}
		switch typ {
		case TypeServerHello:
			if _, err := ParseServerHello(body); err != nil {
				t.Fatal(err)
			}
		case TypeCertificate:
			c, err := ParseCertificate(body)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Chain) != 1 || len(c.Chain[0]) != 800 {
				t.Errorf("cert chain = %d certs", len(c.Chain))
			}
		}
	}
}

func TestHandshakeReaderAlert(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAlert(&buf, 2, 40); err != nil { // fatal handshake_failure
		t.Fatal(err)
	}
	hr := NewHandshakeReader(&buf)
	if _, _, err := hr.Next(); err != ErrAlert {
		t.Errorf("err = %v, want ErrAlert", err)
	}
}

func TestHandshakeSpanningRecords(t *testing.T) {
	// A handshake message split across two records must reassemble.
	msg := make([]byte, 4+100)
	msg[0] = TypeCertificate
	msg[3] = 100
	var buf bytes.Buffer
	WriteRecord(&buf, RecordHandshake, msg[:50])
	WriteRecord(&buf, RecordHandshake, msg[50:])
	hr := NewHandshakeReader(&buf)
	typ, body, err := hr.Next()
	if err != nil || typ != TypeCertificate || len(body) != 100 {
		t.Errorf("reassembly: %d, %d bytes, %v", typ, len(body), err)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	if _, err := ParseClientHello([]byte{3, 3, 0}); err == nil {
		t.Error("truncated ClientHello accepted")
	}
	if _, err := ParseServerHello([]byte{3}); err == nil {
		t.Error("truncated ServerHello accepted")
	}
	if _, err := ParseCertificate([]byte{0, 0, 9, 1}); err == nil {
		t.Error("truncated Certificate accepted")
	}
}
