package pipeline

import (
	"context"
	"errors"
	"testing"
)

func stage(s Stage, fn func(context.Context) error) StageFunc {
	return StageFunc{Stage: s, Run: fn}
}

func TestRunnerExecutesStagesInOrder(t *testing.T) {
	var order []Stage
	var hooks []string
	r := Runner{Hooks: Hooks{
		Before: func(_ context.Context, s Stage) { hooks = append(hooks, "before "+s.String()) },
		After:  func(_ context.Context, s Stage, err error) { hooks = append(hooks, "after "+s.String()) },
	}}
	err := r.Run(context.Background(),
		stage(StageSweep, func(context.Context) error { order = append(order, StageSweep); return nil }),
		stage(StageGrab, func(context.Context) error { order = append(order, StageGrab); return nil }),
		stage(StageSeal, func(context.Context) error { order = append(order, StageSeal); return nil }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != StageSweep || order[1] != StageGrab || order[2] != StageSeal {
		t.Errorf("stage order = %v", order)
	}
	want := []string{"before sweep", "after sweep", "before grab", "after grab", "before seal", "after seal"}
	if len(hooks) != len(want) {
		t.Fatalf("hooks = %v", hooks)
	}
	for i := range want {
		if hooks[i] != want[i] {
			t.Errorf("hook %d = %q, want %q", i, hooks[i], want[i])
		}
	}
}

func TestRunnerStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Runner{}.Run(context.Background(),
		stage(StageSweep, func(context.Context) error { ran++; return nil }),
		stage(StageGrab, func(context.Context) error { ran++; return boom }),
		stage(StageSeal, func(context.Context) error { ran++; return nil }),
	)
	if ran != 2 {
		t.Errorf("ran %d stages, want 2", ran)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, does not wrap cause", err)
	}
	if s, ok := InterruptedStage(err); !ok || s != StageGrab {
		t.Errorf("InterruptedStage = %v, %v; want grab", s, ok)
	}
}

func TestRunnerCanceledBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := Runner{}.Run(ctx,
		stage(StageSweep, func(context.Context) error { ran++; cancel(); return nil }),
		stage(StageGrab, func(context.Context) error { ran++; return nil }),
	)
	if ran != 1 {
		t.Errorf("ran %d stages, want 1 (grab must not start after cancel)", ran)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, should unwrap to context.Canceled", err)
	}
	if s, ok := InterruptedStage(err); !ok || s != StageGrab {
		t.Errorf("InterruptedStage = %v, %v; want grab (the stage that never started)", s, ok)
	}
}

func TestRunnerNormalizesRawContextErrors(t *testing.T) {
	// A stage that reports the raw context error (as net or io code might)
	// must still match ErrCanceled at the top.
	ctx, cancel := context.WithCancel(context.Background())
	err := Runner{}.Run(ctx,
		stage(StageSweep, func(ctx context.Context) error { cancel(); return ctx.Err() }),
	)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled via normalization", err)
	}
	// Already-tagged errors are not double-wrapped.
	err = Runner{}.Run(context.Background(),
		stage(StageGrab, func(context.Context) error { return Canceled(context.Canceled) }),
	)
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StageError", err)
	}
	if _, ok := se.Err.(*taggedError); !ok {
		t.Errorf("stage error payload = %T, want single tag", se.Err)
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageWorldgen: "worldgen", StageSweep: "sweep", StageGrab: "grab",
		StageSeal: "seal", StageAnalyze: "analyze", StageReport: "report",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if Stage(200).String() != "stage(?)" {
		t.Errorf("out-of-range stage = %q", Stage(200).String())
	}
}

// TestHooksFireExactlyOncePerStage pins the hook contract instrumentation
// depends on: for every stage that starts, Before fires exactly once and
// After exactly once, in stage order, Before strictly preceding After —
// including for a stage that fails. Stages after the failure never start,
// so neither of their hooks fire.
func TestHooksFireExactlyOncePerStage(t *testing.T) {
	boom := errors.New("boom")
	before := map[Stage]int{}
	after := map[Stage]int{}
	var afterErrs []error
	var seq []string
	r := Runner{Hooks: Hooks{
		Before: func(_ context.Context, s Stage) {
			before[s]++
			seq = append(seq, "before "+s.String())
		},
		After: func(_ context.Context, s Stage, err error) {
			after[s]++
			afterErrs = append(afterErrs, err)
			seq = append(seq, "after "+s.String())
		},
	}}
	err := r.Run(context.Background(),
		stage(StageSweep, func(context.Context) error { return nil }),
		stage(StageGrab, func(context.Context) error { return boom }),
		stage(StageSeal, func(context.Context) error { return nil }),
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	for _, s := range []Stage{StageSweep, StageGrab} {
		if before[s] != 1 || after[s] != 1 {
			t.Errorf("stage %v: Before fired %d times, After %d times; want exactly 1 each",
				s, before[s], after[s])
		}
	}
	if before[StageSeal] != 0 || after[StageSeal] != 0 {
		t.Errorf("seal never ran but hooks fired: before %d, after %d",
			before[StageSeal], after[StageSeal])
	}
	want := []string{"before sweep", "after sweep", "before grab", "after grab"}
	if len(seq) != len(want) {
		t.Fatalf("hook sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("hook %d = %q, want %q", i, seq[i], want[i])
		}
	}
	// After receives the stage's own outcome: nil for sweep, the failure
	// for grab.
	if afterErrs[0] != nil {
		t.Errorf("after(sweep) err = %v, want nil", afterErrs[0])
	}
	if !errors.Is(afterErrs[1], boom) {
		t.Errorf("after(grab) err = %v, want boom", afterErrs[1])
	}
}

// TestHooksAfterFiresOnCanceledStage: a stage interrupted mid-run still
// gets its After (with the cancellation error), so span-style tracing
// closes every span it opens. A stage skipped by a pre-stage cancellation
// check gets neither hook.
func TestHooksAfterFiresOnCanceledStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var afterStages []Stage
	var afterErr error
	r := Runner{Hooks: Hooks{
		After: func(_ context.Context, s Stage, err error) {
			afterStages = append(afterStages, s)
			if s == StageSweep {
				afterErr = err
			}
		},
	}}
	err := r.Run(ctx,
		stage(StageSweep, func(ctx context.Context) error { cancel(); return ctx.Err() }),
		stage(StageGrab, func(context.Context) error { return nil }),
	)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(afterStages) != 1 || afterStages[0] != StageSweep {
		t.Errorf("After fired for %v, want [sweep] only", afterStages)
	}
	if !errors.Is(afterErr, ErrCanceled) {
		t.Errorf("after(sweep) err = %v, want the normalized cancellation", afterErr)
	}
}
