package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/origin"
	"repro/internal/proto"
)

// TestSentinelsViaTag covers every sentinel: a tagged error must match its
// sentinel with errors.Is, keep the cause reachable, and not match the
// other sentinels.
func TestSentinelsViaTag(t *testing.T) {
	sentinels := []error{ErrCanceled, ErrScanFailed, ErrSealConflict, ErrBadConfig, ErrWorldGen}
	cause := errors.New("underlying cause")
	for i, s := range sentinels {
		tagged := Tag(s, cause)
		if !errors.Is(tagged, s) {
			t.Errorf("Tag(%v, cause) does not match its sentinel", s)
		}
		if !errors.Is(tagged, cause) {
			t.Errorf("Tag(%v, cause) lost the cause", s)
		}
		for j, other := range sentinels {
			if i != j && errors.Is(tagged, other) {
				t.Errorf("Tag(%v, cause) wrongly matches %v", s, other)
			}
		}
		if !strings.Contains(tagged.Error(), "underlying cause") {
			t.Errorf("Tag(%v, cause).Error() = %q, cause invisible", s, tagged.Error())
		}
	}
}

func TestTagNilAndIdempotent(t *testing.T) {
	if Tag(ErrBadConfig, nil) != ErrBadConfig {
		t.Error("Tag(sentinel, nil) should return the bare sentinel")
	}
	once := Canceled(context.Canceled)
	twice := Canceled(once)
	if twice != once {
		t.Error("re-tagging an already-tagged error should be a no-op")
	}
}

// TestScanErrorChain verifies the full wrapper chain a failed parallel run
// produces: errors.Join of ScanError{StageError{tagged cause}}.
func TestScanErrorChain(t *testing.T) {
	cause := fmt.Errorf("zmap: probes must be positive")
	scanErr := &ScanError{
		Origin: origin.AU, Proto: proto.HTTP, Trial: 2,
		Err: &StageError{Stage: StageSweep, Err: Tag(ErrBadConfig, cause)},
	}
	joined := Tag(ErrScanFailed, errors.Join(scanErr, &ScanError{
		Origin: origin.BR, Proto: proto.SSH, Trial: 0, Err: Canceled(context.Canceled),
	}))

	if !errors.Is(joined, ErrScanFailed) {
		t.Error("joined run error does not match ErrScanFailed")
	}
	if !errors.Is(joined, ErrBadConfig) {
		t.Error("joined run error lost the ErrBadConfig classification")
	}
	if !errors.Is(joined, ErrCanceled) {
		t.Error("joined run error lost the ErrCanceled member")
	}
	if !errors.Is(joined, cause) {
		t.Error("joined run error lost the root cause")
	}

	var se *ScanError
	if !errors.As(joined, &se) {
		t.Fatal("errors.As failed to find a ScanError")
	}
	if se.Origin != origin.AU || se.Proto != proto.HTTP || se.Trial != 2 {
		t.Errorf("ScanError tuple = %v/%v/%d, want AU/http/2", se.Origin, se.Proto, se.Trial)
	}
	var ste *StageError
	if !errors.As(joined, &ste) || ste.Stage != StageSweep {
		t.Errorf("StageError stage = %v, want sweep", ste)
	}

	msg := scanErr.Error()
	for _, part := range []string{"AU", "trial 2", "sweep", "probes must be positive"} {
		if !strings.Contains(msg, part) {
			t.Errorf("ScanError message %q missing %q", msg, part)
		}
	}
}

func TestCanceledMatchesContextErrors(t *testing.T) {
	for _, ctxErr := range []error{context.Canceled, context.DeadlineExceeded} {
		err := Canceled(ctxErr)
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, ctxErr) {
			t.Errorf("Canceled(%v) = %v: must match both ErrCanceled and the context error", ctxErr, err)
		}
	}
}
