// Package pipeline defines the study's execution lifecycle: the named
// stages a run moves through (Worldgen → Sweep → Grab → Seal → Analyze →
// Report), a Runner that executes stages under a context with per-stage
// before/after hooks, and the typed error layer (sentinels plus the
// ScanError and StageError wrappers) every layer of the scanner reports
// through.
//
// The package sits below experiment, results, and analysis so that all of
// them can share one error vocabulary; internal/core re-exports the
// sentinels for callers outside the internal tree.
//
// Cancellation contract: an uncancelled run is bit-identical to a run
// without any context plumbing (the checks are pure reads), and a canceled
// run stops at the next stage boundary or sweep batch, returning an error
// chain that contains ErrCanceled and the Stage it was interrupted in.
package pipeline

import (
	"context"
	"errors"
)

// Stage names one phase of the study lifecycle. Worldgen, Analyze, and
// Report run once per study; Sweep, Grab, and Seal run once per (origin,
// protocol, trial) scan.
type Stage uint8

const (
	// StageWorldgen generates the synthetic Internet.
	StageWorldgen Stage = iota
	// StageSweep is the L4 ZMap sweep of one scan.
	StageSweep
	// StageGrab is the L7 ZGrab handshake pass over the sweep's replies.
	StageGrab
	// StageSeal commits the scan's columns (sort + dedup; for a
	// spill-backed store, the external merge of on-disk segments plus
	// segment cleanup) and tears down the scan's fabric connections.
	StageSeal
	// StageAnalyze runs the paper's analyses over the sealed dataset.
	StageAnalyze
	// StageReport renders tables and figures.
	StageReport
	numStages
)

// NumStages is the number of defined lifecycle stages — the array size for
// per-stage state (telemetry keeps per-stage start times in one).
const NumStages = int(numStages)

var stageNames = [numStages]string{
	"worldgen", "sweep", "grab", "seal", "analyze", "report",
}

// String returns the stage name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(?)"
}

// Hooks are optional callbacks fired around every stage a Runner executes —
// the seam for progress reporting, tracing, and tests. Hooks must be safe
// for concurrent use when scans run in parallel (one Runner per scan).
type Hooks struct {
	// Before fires immediately before the stage runs.
	Before func(ctx context.Context, s Stage)
	// After fires when the stage returns, with its error (nil on success).
	After func(ctx context.Context, s Stage, err error)
}

// StageFunc binds a stage label to the work it performs.
type StageFunc struct {
	Stage Stage
	Run   func(ctx context.Context) error
}

// Runner executes stages in order under a context. The context is checked
// at every stage boundary, so cancellation between stages costs nothing and
// is reported against the stage that never started; cancellation inside a
// stage is the stage's own responsibility (the sweep checks per batch, the
// grab pool per claimed reply).
type Runner struct {
	Hooks Hooks
}

// Run executes the stages in order, stopping at the first error. The
// returned error is a *StageError naming the interrupted stage; context
// errors are normalized so errors.Is(err, ErrCanceled) holds for any
// canceled run regardless of which layer observed the cancellation first.
func (r Runner) Run(ctx context.Context, stages ...StageFunc) error {
	for _, sf := range stages {
		if err := ctx.Err(); err != nil {
			return &StageError{Stage: sf.Stage, Err: Canceled(err)}
		}
		if r.Hooks.Before != nil {
			r.Hooks.Before(ctx, sf.Stage)
		}
		err := normalize(sf.Run(ctx))
		if r.Hooks.After != nil {
			r.Hooks.After(ctx, sf.Stage, err)
		}
		if err != nil {
			return &StageError{Stage: sf.Stage, Err: err}
		}
	}
	return nil
}

// normalize maps raw context errors onto ErrCanceled so every layer's
// cancellation surfaces through the one sentinel.
func normalize(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Canceled(err)
	}
	return err
}

// InterruptedStage extracts the stage a failed or canceled run stopped in.
func InterruptedStage(err error) (Stage, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	return 0, false
}
