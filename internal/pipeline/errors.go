package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/origin"
	"repro/internal/proto"
)

// Sentinel errors: the classification layer callers match with errors.Is
// instead of string inspection. Lower layers attach them with Tag, keeping
// the underlying cause reachable through errors.As/Unwrap.
var (
	// ErrCanceled reports that the run's context was canceled or its
	// deadline passed. A canceled study still returns the sealed partial
	// dataset it collected.
	ErrCanceled = errors.New("scanorigin: run canceled")
	// ErrScanFailed reports that one or more (origin, protocol, trial)
	// scans failed for a reason other than cancellation; the chain holds
	// a *ScanError per failed tuple.
	ErrScanFailed = errors.New("scanorigin: scan failed")
	// ErrSealConflict reports an attempt to silently overwrite a sealed,
	// committed scan with different records.
	ErrSealConflict = errors.New("scanorigin: sealed scan conflict")
	// ErrBadConfig reports an invalid scanner, world, or study
	// configuration, detected before any packet is sent.
	ErrBadConfig = errors.New("scanorigin: invalid configuration")
	// ErrWorldGen reports a failure while generating the synthetic
	// Internet.
	ErrWorldGen = errors.New("scanorigin: world generation failed")
)

// Tag classifies err under a sentinel: the result matches the sentinel via
// errors.Is and still unwraps to err, so both the class and the cause stay
// reachable. Tag(nil) returns the bare sentinel.
func Tag(sentinel, err error) error {
	if err == nil {
		return sentinel
	}
	if errors.Is(err, sentinel) {
		return err
	}
	return &taggedError{sentinel: sentinel, err: err}
}

// Canceled tags a context error as ErrCanceled.
func Canceled(err error) error { return Tag(ErrCanceled, err) }

type taggedError struct{ sentinel, err error }

func (t *taggedError) Error() string        { return t.sentinel.Error() + ": " + t.err.Error() }
func (t *taggedError) Is(target error) bool { return target == t.sentinel }
func (t *taggedError) Unwrap() error        { return t.err }

// StageError records the lifecycle stage an error interrupted. The Runner
// wraps every stage failure in one, so a canceled or failed run always
// reports where it stopped.
type StageError struct {
	Stage Stage
	Err   error
}

func (e *StageError) Error() string { return "stage " + e.Stage.String() + ": " + e.Err.Error() }
func (e *StageError) Unwrap() error { return e.Err }

// ScanError identifies which (origin, protocol, trial) scan an error came
// from. Study.Run wraps every per-scan failure in one and joins them with
// errors.Join, so a multi-failure run reports every failed tuple.
type ScanError struct {
	Origin origin.ID
	Proto  proto.Protocol
	Trial  int
	Err    error
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("scan %v/%v/trial %d: %v", e.Origin, e.Proto, e.Trial, e.Err)
}

func (e *ScanError) Unwrap() error { return e.Err }
