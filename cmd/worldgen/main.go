// Command worldgen generates and inspects the synthetic Internet: country
// populations, AS size distribution, and the paper's named profile
// networks.
//
// Usage:
//
//	worldgen [-seed N] [-scale F] [-top N] [-countries] [-profiles]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/internal/geo"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 2020, "world seed")
		scale     = flag.Float64("scale", 0.001, "world scale")
		top       = flag.Int("top", 15, "number of top ASes to list")
		countries = flag.Bool("countries", true, "print country populations")
		profiles  = flag.Bool("profiles", true, "print the paper's profile networks")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	w, err := world.Build(ctx, world.Spec{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("seed %d, scale %g → %d hosts over 2^%d addresses, %d ASes\n",
		*seed, *scale, w.NumHosts(), w.SpaceBits, w.Routes.Len())
	for _, p := range proto.All() {
		fmt.Printf("  %-6s %d hosts\n", p, w.HostCount(p))
	}

	if *countries {
		fmt.Println("\ncountry populations (HTTP hosts):")
		type row struct {
			c geo.Country
			n int
		}
		var rows []row
		for _, ci := range w.Countries.Countries() {
			if n := w.CountryHostCount(ci.Code, proto.HTTP); n > 0 {
				rows = append(rows, row{ci.Code, n})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		for _, r := range rows {
			fmt.Printf("  %-3s %7d\n", r.c, r.n)
		}
	}

	fmt.Printf("\ntop %d ASes by host count:\n", *top)
	type asRow struct {
		name  string
		num   uint32
		hosts int
	}
	var ases []asRow
	for _, a := range w.Routes.All() {
		ases = append(ases, asRow{a.Name, uint32(a.Number), len(w.HostsInAS(a.Number))})
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i].hosts > ases[j].hosts })
	for i, a := range ases {
		if i >= *top {
			break
		}
		fmt.Printf("  AS%-7d %-40s %7d hosts\n", a.num, a.name, a.hosts)
	}

	if *profiles {
		fmt.Println("\npaper profile networks:")
		for _, name := range w.ProfileNames() {
			n := w.MustProfileASN(name)
			a, _ := w.Routes.Get(n)
			fmt.Printf("  AS%-7d %-40s %-3s %-11s %6d hosts\n",
				n, name, a.Country, a.Kind, len(w.HostsInAS(n)))
		}
	}
}
