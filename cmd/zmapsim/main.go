// Command zmapsim runs a single-origin ZMap+ZGrab scan against a generated
// synthetic Internet — the building block of the study, exposed as a
// standalone tool with ZMap-flavoured output.
//
// Usage:
//
//	zmapsim [-seed N] [-scale F] [-origin AU|BR|DE|JP|US1|US64|CEN]
//	        [-proto http|https|ssh] [-trial N] [-probes N] [-retries N] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pcap"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/world"
	"repro/internal/zgrab"
	"repro/internal/zmap"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 2020, "study seed")
		scale     = flag.Float64("scale", 0.0002, "world scale")
		originStr = flag.String("origin", "US1", "scan origin (AU, BR, DE, JP, US1, US64, CEN)")
		protoStr  = flag.String("proto", "http", "protocol (http, https, ssh)")
		trial     = flag.Int("trial", 0, "trial index (0-based)")
		probes    = flag.Int("probes", 2, "SYN probes per target")
		retries   = flag.Int("retries", 0, "application-handshake retry budget")
		verbose   = flag.Bool("v", false, "print every responsive host")
		pcapPath  = flag.String("pcap", "", "write probe/response packets to this pcap file")
		blocklist = flag.String("blocklist", "", "ZMap-style blocklist file (CIDRs, # comments)")
		banners   = flag.Bool("banners", false, "print the top captured banners")
		shard     = flag.Int("shard", 0, "this scanner's shard index (0-based)")
		shards    = flag.Int("shards", 1, "total cooperating shards")
	)
	flag.Parse()

	o, ok := parseOrigin(*originStr)
	if !ok {
		fatalf("unknown origin %q", *originStr)
	}
	p, ok := parseProto(*protoStr)
	if !ok {
		fatalf("unknown protocol %q", *protoStr)
	}

	cfg := experiment.Config{
		WorldSpec: world.Spec{Seed: *seed, Scale: *scale},
		Trials:    *trial + 1,
		Probes:    *probes,
		Retries:   *retries,
		Shard:     *shard,
		Shards:    *shards,
	}
	if *blocklist != "" {
		f, err := os.Open(*blocklist)
		if err != nil {
			fatalf("%v", err)
		}
		set, err := ip.ParseBlocklist(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Blocklist = set
		fmt.Printf("blocklist: %d prefixes covering %d addresses\n", set.Len(), set.NumAddrs())
	}
	var capture *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		capture, err = pcap.NewWriter(f, pcap.LinkTypeRaw)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.SinkWrapper = func(inner zmap.PacketSink) zmap.PacketSink {
			return pcap.NewSink(inner, capture)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := experiment.NewStudy(ctx, cfg)
	if err != nil {
		if errors.Is(err, pipeline.ErrCanceled) {
			exitf(130, "interrupted")
		}
		fatalf("%v", err)
	}
	w := st.World
	fmt.Printf("zmapsim: scanning %s (port %d) from %s over 2^%d addresses\n",
		p, p.Port(), w.Origins.Get(o).Name, w.SpaceBits)

	res, err := st.ScanOne(ctx, o, p, *trial)
	if err != nil {
		if errors.Is(err, pipeline.ErrCanceled) {
			exitf(130, "interrupted")
		}
		fatalf("%v", err)
	}
	printScan(res, w, *verbose)
	if capture != nil {
		fmt.Printf("pcap: %d packets written to %s\n", capture.Count(), *pcapPath)
	}
	if *banners {
		printBanners(res)
	}
}

// printBanners tallies the captured banners of one scan.
func printBanners(res *results.ScanResult) {
	counts := map[string]int{}
	res.Each(func(r results.HostRecord) {
		if r.L7 && r.Banner != "" {
			counts[r.Banner]++
		}
	})
	type kv struct {
		b string
		n int
	}
	var kvs []kv
	for b, n := range counts {
		kvs = append(kvs, kv{b, n})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].n > kvs[j].n })
	fmt.Println("top banners:")
	for i, e := range kvs {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-40s %6d\n", e.b, e.n)
	}
}

func parseOrigin(s string) (origin.ID, bool) {
	for _, o := range append(origin.StudySet(), origin.CARINET) {
		if strings.EqualFold(o.String(), s) {
			return o, true
		}
	}
	return 0, false
}

func parseProto(s string) (proto.Protocol, bool) {
	for _, p := range proto.All() {
		if strings.EqualFold(p.String(), s) {
			return p, true
		}
	}
	return 0, false
}

func printScan(res *results.ScanResult, w *world.World, verbose bool) {
	l4, l7, rstOnly := 0, 0, 0
	failCounts := map[zgrab.FailMode]int{}
	res.Each(func(r results.HostRecord) {
		if r.L4() {
			l4++
		} else if r.RST {
			rstOnly++
		}
		if r.L7 {
			l7++
		} else if r.L4() {
			failCounts[r.Fail]++
		}
		if verbose && r.L4() {
			status := "ok"
			if !r.L7 {
				status = r.Fail.String()
			}
			as := "?"
			if a, okAS := w.ASOf(r.Addr); okAS {
				as = fmt.Sprintf("AS%d %s", a.Number, a.Name)
			}
			fmt.Printf("  %-15s probes=%02b %-8s %s\n", r.Addr, r.ProbeMask, status, as)
		}
	})
	fmt.Printf("targets probed:    %d\n", res.Targets)
	fmt.Printf("probes sent:       %d\n", res.ProbesSent)
	fmt.Printf("SYN-ACKs (valid):  %d\n", res.SynAcks)
	fmt.Printf("RSTs (valid):      %d\n", res.Rsts)
	fmt.Printf("invalid responses: %d\n", res.Invalid)
	fmt.Printf("hosts L4-alive:    %d\n", l4)
	fmt.Printf("hosts RST-only:    %d\n", rstOnly)
	fmt.Printf("handshakes OK:     %d\n", l7)
	for mode, n := range failCounts {
		fmt.Printf("  grab failed (%s): %d\n", mode, n)
	}
	hitRate := 0.0
	if res.Targets > 0 {
		hitRate = float64(l7) / float64(res.Targets)
	}
	fmt.Printf("hit rate:          %.4f%%\n", 100*hitRate)
}

func fatalf(format string, args ...any) {
	exitf(1, format, args...)
}

func exitf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "zmapsim: "+format+"\n", args...)
	os.Exit(code)
}
