package main

import (
	"strings"
	"testing"
)

func TestParseBenchCapturesExtraMetrics(t *testing.T) {
	out := `
goos: linux
BenchmarkScale1Study-4   1  199123456789 ns/op  5280527 rows  412.5 peak-rss-MiB  31 spill-segments  201 B/op  7 allocs/op
BenchmarkPlain  10  1234 ns/op
`
	got, err := parseBench(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkScale1Study"]
	if !ok {
		t.Fatalf("missing BenchmarkScale1Study in %v", got)
	}
	if m.NsPerOp != 199123456789 {
		t.Errorf("ns/op = %v", m.NsPerOp)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 201 || m.AllocsPerOp == nil || *m.AllocsPerOp != 7 {
		t.Errorf("benchmem columns not captured: %+v", m)
	}
	want := map[string]float64{"rows": 5280527, "peak-rss-MiB": 412.5, "spill-segments": 31}
	if len(m.Extra) != len(want) {
		t.Fatalf("extra = %v, want %v", m.Extra, want)
	}
	for k, v := range want {
		if m.Extra[k] != v {
			t.Errorf("extra[%q] = %v, want %v", k, m.Extra[k], v)
		}
	}
	// The iteration count must not leak in as a metric named after the
	// ns/op value, and a plain line has no extras at all.
	if p := got["BenchmarkPlain"]; p.NsPerOp != 1234 || len(p.Extra) != 0 {
		t.Errorf("plain line parsed as %+v", p)
	}
}
