// Command benchjson converts `go test -bench` output on stdin into the
// repo's BENCH_*.json record format (date, machine, command, note,
// results_ns_per_op). The Makefile's bench targets pipe through it so the
// checked-in benchmark files stay machine-generated and uniform:
//
//	go test -run xxx -bench Sweep -benchtime 10x ./internal/zmap/ |
//	    go run ./cmd/benchjson -command "..." -note "..." -out BENCH_telemetry.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type machine struct {
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

type record struct {
	Date    string             `json:"date"`
	Machine machine            `json:"machine"`
	Command string             `json:"command"`
	Note    string             `json:"note,omitempty"`
	Results map[string]float64 `json:"results_ns_per_op"`
}

func main() {
	var (
		command = flag.String("command", "", "benchmark command line to record")
		note    = flag.String("note", "", "free-form note about the run")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	rec := record{
		Date: time.Now().Format("2006-01-02"),
		Machine: machine{
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
		},
		Command: *command,
		Note:    *note,
		Results: map[string]float64{},
	}

	// Benchmark lines: "BenchmarkName-8  10  123456 ns/op  0 B/op ...".
	// Names are recorded without the -GOMAXPROCS suffix, matching the
	// existing BENCH files.
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the raw output visible in CI logs
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		rec.Results[name] = ns
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if len(rec.Results) == 0 {
		fatalf("no benchmark results found on stdin")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fatalf("encoding: %v", err)
	}
	if *out != "" {
		fmt.Printf("benchmark results written to %s\n", *out)
	}
}

// cpuModel reads the CPU model name from /proc/cpuinfo (Linux); other
// platforms record the architecture.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return runtime.GOARCH
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
