// Command benchjson converts `go test -bench` output on stdin into the
// repo's BENCH_*.json record format (date, machine, command, note,
// results). The Makefile's bench targets pipe through it so the checked-in
// benchmark files stay machine-generated and uniform:
//
//	go test -run xxx -bench Sweep -benchtime 10x ./internal/zmap/ |
//	    go run ./cmd/benchjson -command "..." -note "..." -out BENCH_telemetry.json
//
// With -benchmem output the B/op and allocs/op columns are captured too.
// The -before flag names a file holding raw `go test -bench` output from a
// prior run (e.g. the pre-optimisation tree); when given, each benchmark is
// emitted as {"before": ..., "after": ...} so a BENCH file records the
// perf delta the way BENCH_columnar.json does. Without -before the legacy
// flat results_ns_per_op map is emitted — unless a benchmark line carries
// b.ReportMetric columns (peak-rss-MiB, rows, spill counters …), in which
// case the rich per-benchmark form is used so the proof metrics land in
// the JSON instead of being dropped with the flat map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type machine struct {
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

// metrics is one benchmark line's measurements. Bytes/allocs are pointers
// so runs without -benchmem omit them rather than recording zeros. Extra
// holds any b.ReportMetric columns (unit → value), e.g. the scale
// benchmark's peak-rss-MiB — that is how a BENCH file proves a memory
// budget held, not just how fast the run was.
type metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// diff pairs a benchmark's current measurement with the prior run it is
// being compared against.
type diff struct {
	Before *metrics `json:"before,omitempty"`
	After  metrics  `json:"after"`
}

type record struct {
	Date    string  `json:"date"`
	Machine machine `json:"machine"`
	Command string  `json:"command"`
	Note    string  `json:"note,omitempty"`
	// Flat is the legacy ns/op-only map, emitted when no -before file is
	// given (matches the oldest BENCH files).
	Flat map[string]float64 `json:"results_ns_per_op,omitempty"`
	// Results is the before/after form, emitted with -before.
	Results map[string]diff `json:"results,omitempty"`
}

func main() {
	var (
		command = flag.String("command", "", "benchmark command line to record")
		note    = flag.String("note", "", "free-form note about the run")
		out     = flag.String("out", "", "output file (default stdout)")
		before  = flag.String("before", "", "file of raw benchmark output from a prior run to diff against")
		gateNum = flag.String("gate-num", "", "gate: benchmark whose ns/op is the numerator")
		gateDen = flag.String("gate-den", "", "gate: benchmark whose ns/op is the denominator")
		gateMax = flag.Float64("gate-max", 0, "gate: fail (exit 1) when num/den exceeds this ratio")
	)
	flag.Parse()

	rec := record{
		Date: time.Now().Format("2006-01-02"),
		Machine: machine{
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
		},
		Command: *command,
		Note:    *note,
	}

	after, err := parseBench(os.Stdin, true)
	if err != nil {
		fatalf("reading stdin: %v", err)
	}
	if len(after) == 0 {
		fatalf("no benchmark results found on stdin")
	}

	if *before != "" {
		f, err := os.Open(*before)
		if err != nil {
			fatalf("%v", err)
		}
		prior, err := parseBench(f, false)
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *before, err)
		}
		rec.Results = map[string]diff{}
		for name, m := range after {
			d := diff{After: m}
			if b, ok := prior[name]; ok {
				bc := b
				d.Before = &bc
			}
			rec.Results[name] = d
		}
	} else {
		hasExtra := false
		for _, m := range after {
			if len(m.Extra) > 0 {
				hasExtra = true
				break
			}
		}
		if hasExtra {
			rec.Results = map[string]diff{}
			for name, m := range after {
				rec.Results[name] = diff{After: m}
			}
		} else {
			rec.Flat = map[string]float64{}
			for name, m := range after {
				rec.Flat[name] = m.NsPerOp
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fatalf("encoding: %v", err)
	}
	if *out != "" {
		fmt.Printf("benchmark results written to %s\n", *out)
	}

	// The ratio gate runs after the record is written, so a failing run
	// still leaves its numbers on disk for inspection.
	if *gateNum != "" || *gateDen != "" || *gateMax != 0 {
		if *gateNum == "" || *gateDen == "" || *gateMax <= 0 {
			fatalf("-gate-num, -gate-den, and -gate-max (> 0) must be given together")
		}
		num, ok := after[*gateNum]
		if !ok {
			fatalf("gate: benchmark %q not in results", *gateNum)
		}
		den, ok := after[*gateDen]
		if !ok {
			fatalf("gate: benchmark %q not in results", *gateDen)
		}
		if den.NsPerOp <= 0 {
			fatalf("gate: %s ns/op is %v", *gateDen, den.NsPerOp)
		}
		ratio := num.NsPerOp / den.NsPerOp
		fmt.Printf("gate: %s / %s = %.4f (max %.4f)\n", *gateNum, *gateDen, ratio, *gateMax)
		if ratio > *gateMax {
			fatalf("gate failed: %s is %.1f%% slower than %s (budget %.1f%%)",
				*gateNum, 100*(ratio-1), *gateDen, 100*(*gateMax-1))
		}
	}
}

// parseBench extracts benchmark measurements from `go test -bench` output.
// Lines look like "BenchmarkName-8  10  123456 ns/op  42 B/op  3 allocs/op"
// (the memory columns only under -benchmem). Names are recorded without the
// -GOMAXPROCS suffix, matching the existing BENCH files. Under `-count N`
// a benchmark appears N times; the fastest sample wins (minimum-of-N is
// the noise-robust point estimate — scheduler and frequency interference
// only ever add time), which is what makes the ratio gate usable on shared
// runners. When tee is set, every input line is echoed to stdout so raw
// output stays visible in CI logs.
func parseBench(r io.Reader, tee bool) (map[string]metrics, error) {
	results := map[string]metrics{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if tee {
			fmt.Println(line)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var m metrics
		found := false
		for i, f := range fields {
			if i == 0 {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch f {
			case "ns/op":
				m.NsPerOp = v
				found = true
			case "B/op":
				bv := v
				m.BytesPerOp = &bv
			case "allocs/op":
				av := v
				m.AllocsPerOp = &av
			default:
				// Custom b.ReportMetric columns ("5280527 rows", "412
				// peak-rss-MiB"). A unit token is any field that follows a
				// number without being one itself — the iteration count at
				// fields[1] never matches because the field after it is the
				// ns/op value, which parses as a number.
				if _, err := strconv.ParseFloat(f, 64); err == nil {
					continue
				}
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[f] = v
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		// Strip only a numeric -GOMAXPROCS suffix; sub-benchmark names may
		// themselves contain hyphens ("/routed-empty") and the suffix is
		// absent entirely when GOMAXPROCS is 1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := results[name]; ok && prev.NsPerOp <= m.NsPerOp {
			continue // repeated run (-count): keep the fastest sample
		}
		results[name] = m
	}
	return results, sc.Err()
}

// cpuModel reads the CPU model name from /proc/cpuinfo (Linux); other
// platforms record the architecture.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return runtime.GOARCH
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
