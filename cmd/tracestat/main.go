// Command tracestat analyzes a flight-recorder journal written by
// originscan -trace-dir: it reconstructs the study→scan→stage→batch trace
// tree and prints where the wall time went — per stage, per origin, along
// the critical path, and in the slowest sampled batch/window exemplars —
// plus the grab path's queue-wait vs service-time split from the journal's
// final metrics snapshot.
//
// Usage:
//
//	tracestat [-top N] [-chrome out.json] DIR|journal.jsonl
//
// The argument is either a -trace-dir directory (the tool opens
// journal.jsonl inside it) or a journal file directly. -chrome additionally
// converts every journaled span to Chrome trace_event JSON, which unlike
// originscan's own trace.json (written from the bounded in-memory ring) is
// lossless.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		topN   = flag.Int("top", 10, "how many slowest batch/window exemplars to print")
		chrome = flag.String("chrome", "", "also write the journal's spans as Chrome trace_event JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-top N] [-chrome out.json] DIR|journal.jsonl")
		os.Exit(2)
	}

	evs, err := telemetry.ReadJournal(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	spans := telemetry.JournalSpans(evs)
	snap := telemetry.JournalSnapshot(evs)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatalf("creating -chrome file: %v", err)
		}
		if err := telemetry.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			fatalf("writing -chrome file: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing -chrome file: %v", err)
		}
		fmt.Printf("Chrome trace (%d spans) written to %s\n\n", len(spans), *chrome)
	}

	header(evs, spans, snap)
	stageBreakdown(spans)
	originBreakdown(spans)
	criticalPath(spans)
	slowest(spans, *topN)
	grabAttribution(snap)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}

// header summarizes the journal itself: event and span counts, whether the
// run sealed cleanly (a final snapshot exists), and the trace's wall span.
func header(evs []telemetry.JournalEvent, spans []telemetry.SpanRecord, snap *telemetry.Snapshot) {
	state := "no final snapshot (run did not close cleanly)"
	if snap != nil {
		state = "final snapshot present"
	}
	fmt.Printf("journal: %d events, %d spans, %s\n", len(evs), len(spans), state)
	for _, ev := range evs {
		if ev.Ev == "meta" && ev.Meta != nil {
			fmt.Printf("run: pid %d, started %s\n", ev.Meta.PID, ev.Meta.Start.Format(time.RFC3339))
			break
		}
	}
	if len(spans) > 0 {
		var lo, hi int64
		lo = spans[0].StartNS
		for _, s := range spans {
			if s.StartNS < lo {
				lo = s.StartNS
			}
			if end := s.StartNS + int64(s.Duration); end > hi {
				hi = end
			}
		}
		fmt.Printf("trace window: %s\n", time.Duration(hi-lo).Round(time.Millisecond))
	}
	fmt.Println()
}

// agg accumulates wall time for one grouping key.
type agg struct {
	key   string
	n     int
	total time.Duration
}

// stageBreakdown sums the "scan_stage" spans by their stage label: the
// study-wide answer to "which lifecycle stage costs the wall time".
func stageBreakdown(spans []telemetry.SpanRecord) {
	byStage := map[string]*agg{}
	var order []string
	var grand time.Duration
	for _, s := range spans {
		if s.Name != "scan_stage" {
			continue
		}
		stage := parseLabels(s.Labels)["stage"]
		a := byStage[stage]
		if a == nil {
			a = &agg{key: stage}
			byStage[stage] = a
			order = append(order, stage)
		}
		a.n++
		a.total += s.Duration
		grand += s.Duration
	}
	if grand == 0 {
		fmt.Println("no scan_stage spans in journal")
		return
	}
	fmt.Println("Per-stage wall time (scan_stage spans, all scans)")
	fmt.Printf("%-10s %6s %12s %12s %7s\n", "stage", "spans", "total", "mean", "share")
	for _, k := range order {
		a := byStage[k]
		fmt.Printf("%-10s %6d %12s %12s %6.1f%%\n", a.key, a.n,
			a.total.Round(time.Millisecond), (a.total / time.Duration(a.n)).Round(time.Microsecond),
			100*float64(a.total)/float64(grand))
	}
	fmt.Println()
}

// originBreakdown crosses origin × stage: the per-vantage-point cost
// matrix, which is the study's own unit of comparison.
func originBreakdown(spans []telemetry.SpanRecord) {
	type cell struct{ total time.Duration }
	rows := map[string]map[string]*cell{}
	var origins, stages []string
	seenO, seenS := map[string]bool{}, map[string]bool{}
	for _, s := range spans {
		if s.Name != "scan_stage" {
			continue
		}
		ls := parseLabels(s.Labels)
		o, st := ls["origin"], ls["stage"]
		if o == "" || st == "" {
			continue
		}
		if !seenO[o] {
			seenO[o] = true
			origins = append(origins, o)
		}
		if !seenS[st] {
			seenS[st] = true
			stages = append(stages, st)
		}
		if rows[o] == nil {
			rows[o] = map[string]*cell{}
		}
		if rows[o][st] == nil {
			rows[o][st] = &cell{}
		}
		rows[o][st].total += s.Duration
	}
	if len(origins) == 0 {
		return
	}
	fmt.Println("Per-origin wall time by stage")
	fmt.Printf("%-10s", "origin")
	for _, st := range stages {
		fmt.Printf(" %12s", st)
	}
	fmt.Printf(" %12s\n", "total")
	for _, o := range origins {
		fmt.Printf("%-10s", o)
		var tot time.Duration
		for _, st := range stages {
			var d time.Duration
			if c := rows[o][st]; c != nil {
				d = c.total
			}
			tot += d
			fmt.Printf(" %12s", d.Round(time.Millisecond))
		}
		fmt.Printf(" %12s\n", tot.Round(time.Millisecond))
	}
	fmt.Println()
}

// criticalPath walks the trace tree from its root, descending into the
// longest child at each level: the chain of spans that bounded the run's
// wall time.
func criticalPath(spans []telemetry.SpanRecord) {
	children := map[telemetry.SpanID][]telemetry.SpanRecord{}
	var roots []telemetry.SpanRecord
	for _, s := range spans {
		if s.Parent == 0 {
			if s.ID != 0 { // flat legacy records (no ID) cannot anchor a tree
				roots = append(roots, s)
			}
			continue
		}
		children[s.Parent] = append(children[s.Parent], s)
	}
	if len(roots) == 0 {
		return
	}
	// The root with the longest duration is the run's backbone (normally
	// the single "study" span).
	root := roots[0]
	for _, r := range roots[1:] {
		if r.Duration > root.Duration {
			root = r
		}
	}
	fmt.Println("Critical path (longest child at each level)")
	cur, depth := root, 0
	for {
		name := cur.Name
		if cur.Labels != "" {
			name += "{" + cur.Labels + "}"
		}
		note := ""
		if cur.Dropped > 0 {
			note = fmt.Sprintf("  (%d of %d children sampled)", cur.Children-cur.Dropped, cur.Children)
		}
		fmt.Printf("%s%-*s %12s%s\n", strings.Repeat("  ", depth), 60-2*depth, name,
			cur.Duration.Round(time.Microsecond), note)
		kids := children[cur.ID]
		if len(kids) == 0 {
			break
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.Duration > next.Duration {
				next = k
			}
		}
		cur = next
		depth++
	}
	fmt.Println()
}

// slowest prints the top-N slowest sampled batch/window exemplars — the
// concrete units to stare at when a stage's mean looks wrong.
func slowest(spans []telemetry.SpanRecord, n int) {
	var ex []telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == "sweep_batch" || s.Name == "grab_window" {
			ex = append(ex, s)
		}
	}
	if len(ex) == 0 || n <= 0 {
		return
	}
	sort.Slice(ex, func(i, j int) bool { return ex[i].Duration > ex[j].Duration })
	total := len(ex)
	if len(ex) > n {
		ex = ex[:n]
	}
	fmt.Printf("Slowest batch/window exemplars (top %d of %d sampled)\n", len(ex), total)
	for _, s := range ex {
		line := s.Name
		if s.Labels != "" {
			line += "{" + s.Labels + "}"
		}
		fmt.Printf("  %-40s %12s  %s\n", line, s.Duration.Round(time.Microsecond), attrString(s.Attrs))
	}
	fmt.Println()
}

// grabAttribution prints the grab path's latency split from the journal's
// final snapshot: how long hosts waited for a worker (queue) vs how long
// the worker spent on them (service), and where service time went
// (dial/handshake/retry).
func grabAttribution(snap *telemetry.Snapshot) {
	if snap == nil {
		fmt.Println("grab-path attribution unavailable: journal has no final snapshot")
		return
	}
	rows := []struct{ label, family string }{
		{"queue-wait", telemetry.MetricGrabQueueWait},
		{"service", telemetry.MetricGrabService},
		{"dial", telemetry.MetricGrabDialSeconds},
		{"handshake", telemetry.MetricGrabHandshakeSeconds},
		{"retry", telemetry.MetricGrabRetrySeconds},
		{"window-append", telemetry.MetricWindowAppend},
		{"spill-flush", telemetry.MetricSpillFlushSeconds},
	}
	fmt.Println("Grab-path attribution (final snapshot histograms, all scans merged)")
	fmt.Printf("%-14s %10s %12s %10s %10s %10s %10s\n",
		"phase", "count", "total", "mean", "p50", "p90", "p99")
	any := false
	for _, row := range rows {
		h := mergeHistogram(snap, row.family)
		if h == nil || h.Count == 0 {
			continue
		}
		any = true
		mean := h.Sum / float64(h.Count)
		fmt.Printf("%-14s %10d %12s %10s %10s %10s %10s\n", row.label, h.Count,
			secs(h.Sum), secs(mean), secs(quantile(h, 0.5)), secs(quantile(h, 0.9)), secs(quantile(h, 0.99)))
	}
	if !any {
		fmt.Println("  (no grab-path histograms in snapshot)")
	}
}

// mergeHistogram sums every labeled child of one histogram family (the
// children share bounds by construction — one family, one bucket layout).
func mergeHistogram(snap *telemetry.Snapshot, name string) *telemetry.HistogramJSON {
	var out *telemetry.HistogramJSON
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name != name {
			continue
		}
		if out == nil {
			cp := *h
			cp.Buckets = append([]uint64(nil), h.Buckets...)
			out = &cp
			continue
		}
		for j := range h.Buckets {
			if j < len(out.Buckets) {
				out.Buckets[j] += h.Buckets[j]
			}
		}
		out.Sum += h.Sum
		out.Count += h.Count
	}
	return out
}

// quantile estimates the q-quantile from per-bucket counts with linear
// interpolation inside the landing bucket (the Prometheus convention). The
// +Inf bucket clamps to the highest finite bound.
func quantile(h *telemetry.HistogramJSON, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	cum := uint64(0)
	for i, b := range h.Buckets {
		prev := cum
		cum += b
		if float64(cum) < target {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if b == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-float64(prev))/float64(b)
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// secs renders a duration given in (possibly fractional) seconds.
func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// attrString renders span attributes as k=v pairs, keeping the last write
// for duplicate keys (SetAttr appends).
func attrString(attrs []telemetry.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	last := map[string]int64{}
	var order []string
	for _, a := range attrs {
		if _, ok := last[a.Key]; !ok {
			order = append(order, a.Key)
		}
		last[a.Key] = a.Value
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", k, last[k]))
	}
	return strings.Join(parts, " ")
}

// parseLabels decodes the canonical label form k="v",k2="v2" (values
// escape \, ", and newline as \\, \", \n — the Prometheus exposition
// escaping labelKey produces).
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 || eq+1 >= len(s[i:]) || s[i+eq+1] != '"' {
			break
		}
		key := s[i : i+eq]
		j := i + eq + 2 // first byte of the value
		var b strings.Builder
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[j+1])
				}
				j += 2
				continue
			}
			b.WriteByte(s[j])
			j++
		}
		out[key] = b.String()
		i = j + 1 // past the closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return out
}
