// Command originscan runs the full reproduction of "On the Origin of
// Scanning": three synchronized trials of HTTP, HTTPS, and SSH scans from
// the seven study origins over a synthetic Internet, followed by the SSH
// retry sub-experiment and the co-located Tier-1 follow-up, and prints
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	originscan [-seed N] [-scale F] [-trials N] [-dataset out.json]
//	           [-parallelism N] [-scan-shards N] [-skip-followup]
//	           [-spill-dir DIR] [-mem-budget SIZE]
//	           [-family ipv4|ipv6] [-hitlist FILE]
//	           [-telemetry-addr host:port] [-trace-dir DIR] [-quiet]
//
// The default scale (0.001) generates ≈58k HTTP hosts, mirroring the
// paper's 58M at 1/1000; a full run takes a few minutes on one core.
//
// -family ipv6 switches the study to the seeded IPv6 world: scans walk a
// hitlist (the world's own seeded hitlist, or -hitlist FILE with one
// address per line) instead of sweeping an address space, and the run
// prints per-origin coverage and exclusivity over the hitlist targets in
// place of the paper's IPv4 report (whose figures are calibrated against
// v4 profile networks). See DESIGN.md § 12.
//
// At -scale 0.1 and above the in-memory result columns dominate the
// process footprint; -spill-dir routes each scan's records through the
// spill-to-disk store, and -mem-budget caps the study's live result
// memory (accepts 64MiB/2GiB-style suffixes, split across concurrent
// scans). Sealed datasets are byte-identical with or without spilling.
//
// While scans run, a single-line progress report (scans done/total, probe
// rate, ETA) refreshes on stderr every 2 seconds; -quiet suppresses it for
// scripted runs. -telemetry-addr serves live metrics over HTTP for the
// duration of the process: /metrics (Prometheus text), /metrics.json,
// /spans, /trace (Chrome trace_event JSON of recent spans),
// /debug/pprof/, and /debug/vars.
//
// -trace-dir DIR turns on the flight recorder: every finished span (the
// study→scan→stage→batch trace tree) streams to DIR/journal.jsonl as it
// ends, and on exit — normal, failed, or interrupted — the journal is
// sealed with a final metrics snapshot and a Chrome trace_event file is
// written to DIR/trace.json (load it in chrome://tracing or Perfetto).
// Analyze the journal offline with cmd/tracestat.
//
// SIGINT/SIGTERM cancel the run: scans stop at the next shard batch, every
// scan completed before the interruption is flushed to -dataset (when set),
// and the process exits with code 130. Other failures exit with code 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/report"
	"repro/internal/world"
)

// Exit codes: cancellation exits 130 (128+SIGINT, the shell convention);
// any other failure exits 1.
const (
	exitFailure  = 1
	exitCanceled = 130
)

func main() {
	var (
		seed         = flag.Uint64("seed", 2020, "study seed (drives world, scenario, and scans)")
		scale        = flag.Float64("scale", 0.001, "world scale relative to the paper's Internet")
		trials       = flag.Int("trials", 3, "number of trials")
		datasetPath  = flag.String("dataset", "", "write the raw scan dataset to this JSON file")
		skipFollowUp = flag.Bool("skip-followup", false, "skip the co-located Tier-1 follow-up experiment")
		carinet      = flag.Bool("carinet", true, "include the Carinet origin in trial 1")
		csvDir       = flag.String("csv", "", "also write figure data as CSV files into this directory")
		blocklist    = flag.String("blocklist", "", "ZMap-style blocklist file applied to every scan")
		parallelism  = flag.Int("parallelism", 0, "concurrent (origin, protocol, trial) scans (0 = serial)")
		scanShards   = flag.Int("scan-shards", 0, "goroutine shards per ZMap sweep (0 = unsharded)")
		spillDir     = flag.String("spill-dir", "", "spill scan results to segment files in this directory")
		memBudget    = flag.String("mem-budget", "", "live result memory cap, e.g. 256MiB or 2GiB (requires -spill-dir)")
		telemAddr    = flag.String("telemetry-addr", "", "serve live metrics, pprof, and expvar on this address")
		traceDir     = flag.String("trace-dir", "", "write a span journal and Chrome trace into this directory")
		quiet        = flag.Bool("quiet", false, "suppress the periodic stderr progress line")
		familyStr    = flag.String("family", "ipv4", "address family to study: ipv4 (space sweep) or ipv6 (hitlist walk)")
		hitlistPath  = flag.String("hitlist", "", "scan targets from this file (one address per line; requires -family ipv6)")
	)
	flag.Parse()

	family, err := world.ParseFamily(*familyStr)
	if err != nil {
		fatalf("%v", err)
	}
	if *hitlistPath != "" && family != world.FamilyIPv6 {
		fatalf("-hitlist requires -family ipv6")
	}

	// SIGINT/SIGTERM cancel the study context; the lifecycle layer stops
	// scans at the next batch boundary and hands back partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Telemetry observes every layer of the run; it never changes results
	// (the golden-dataset test pins that), so it is always on and the flags
	// only choose where it surfaces.
	reg := core.NewTelemetry()
	if *traceDir != "" {
		rec, err := core.NewRecorder(filepath.Join(*traceDir, core.JournalFile))
		if err != nil {
			fatalf("opening trace journal: %v", err)
		}
		reg.AttachRecorder(rec)
		setTraceFlush(reg, *traceDir)
		// exitf runs the flush before os.Exit; the defer covers main's
		// normal returns (including the IPv6 report's early return).
		defer traceFlush()
	}
	if *telemAddr != "" {
		ln, err := net.Listen("tcp", *telemAddr)
		if err != nil {
			fatalf("telemetry listener: %v", err)
		}
		fmt.Printf("telemetry: serving /metrics, /metrics.json, /spans, /debug/pprof on http://%s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, reg.ServeMux()); err != nil {
				fmt.Fprintf(os.Stderr, "originscan: telemetry server: %v\n", err)
			}
		}()
	}

	cfg := experiment.Config{
		WorldSpec:      world.Spec{Seed: *seed, Scale: *scale},
		Family:         family,
		Trials:         *trials,
		IncludeCarinet: *carinet,
		Parallelism:    *parallelism,
		ScanShards:     *scanShards,
		SpillDir:       *spillDir,
		Telemetry:      reg,
	}
	if *hitlistPath != "" {
		targets, err := readHitlist(*hitlistPath)
		if err != nil {
			fatalf("reading -hitlist: %v", err)
		}
		cfg.Hitlist = targets
		fmt.Printf("hitlist: %d targets from %s\n", len(targets), *hitlistPath)
	}
	if *memBudget != "" {
		if *spillDir == "" {
			fatalf("-mem-budget requires -spill-dir")
		}
		b, err := parseByteSize(*memBudget)
		if err != nil {
			fatalf("parsing -mem-budget: %v", err)
		}
		cfg.MemBudget = b
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fatalf("creating spill dir: %v", err)
		}
	}
	if *blocklist != "" {
		f, err := os.Open(*blocklist)
		if err != nil {
			fatalf("opening blocklist: %v", err)
		}
		set, err := ip.ParseBlocklist(f)
		f.Close()
		if err != nil {
			fatalf("parsing blocklist: %v", err)
		}
		cfg.Blocklist = set
		fmt.Printf("blocklist: excluding %d addresses\n", set.NumAddrs())
	}
	study, err := core.New(ctx, cfg)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			exitf(exitCanceled, "interrupted during world generation")
		}
		fatalf("preparing study: %v", err)
	}
	w := study.World()
	if w.Family == world.FamilyIPv6 {
		targets := len(w.Hitlist())
		if cfg.Hitlist != nil {
			targets = len(cfg.Hitlist)
		}
		fmt.Printf("world: IPv6, %d hosts (HTTP %d, HTTPS %d, SSH %d), %d ASes, %d hitlist targets\n",
			w.NumHosts(), w.HostCount(proto.HTTP), w.HostCount(proto.HTTPS),
			w.HostCount(proto.SSH), w.Routes.Len(), targets)
	} else {
		fmt.Printf("world: %d hosts (HTTP %d, HTTPS %d, SSH %d), %d ASes, scan space 2^%d\n",
			w.NumHosts(), w.HostCount(proto.HTTP), w.HostCount(proto.HTTPS),
			w.HostCount(proto.SSH), w.Routes.Len(), w.SpaceBits)
	}

	start := time.Now()
	fmt.Printf("running %d trials × 3 protocols × %d origins...\n", *trials, len(origin.StudySet()))
	var progress *core.Progress
	if !*quiet {
		progress = core.StartProgress(reg, os.Stderr, 2*time.Second)
	}
	err = study.Run(ctx)
	progress.Stop()
	if err != nil {
		// Whatever interrupted the run, flush the scans that completed:
		// a multi-hour study should never lose its sealed partial data.
		flushDataset(*datasetPath, study)
		if errors.Is(err, core.ErrCanceled) {
			msg := interruptionMessage(err)
			exitf(exitCanceled, "%s after %v; %d scans sealed", msg,
				time.Since(start).Round(time.Second), study.DS.Len())
		}
		fatalf("running study: %v", err)
	}
	fmt.Printf("scans complete in %v\n", time.Since(start).Round(time.Second))

	flushDataset(*datasetPath, study)

	if w.Family == world.FamilyIPv6 {
		// The paper's figures are calibrated against v4 profile networks;
		// the v6 study's deliverable is the origin-bias table itself.
		v6Report(os.Stdout, study)
		return
	}

	if err := report.All(ctx, os.Stdout, study); err != nil {
		if errors.Is(err, core.ErrCanceled) {
			exitf(exitCanceled, "interrupted during the report stage")
		}
		fatalf("report: %v", err)
	}

	if *csvDir != "" {
		if err := writeCSVs(ctx, *csvDir, study); err != nil {
			fatalf("writing CSVs: %v", err)
		}
		fmt.Printf("CSV figure data written to %s\n", *csvDir)
	}

	if !*skipFollowUp {
		runFollowUp(ctx, world.Spec{Seed: *seed, Scale: *scale})
	}
}

// v6Report prints the IPv6 study's origin-bias summary: per-origin mean
// coverage of the hitlist's live hosts for each protocol, and how many
// hosts only a single origin could reach (exclusivity, the paper's core
// result restated over hitlist targets).
func v6Report(out *os.File, study *core.Study) {
	ds := study.DS
	fmt.Fprintln(out, "\nIPv6 hitlist study: per-origin coverage and exclusivity")
	fmt.Fprintln(out, "=======================================================")
	for _, p := range proto.All() {
		tab := analysis.Coverage(ds, p)
		cls := analysis.NewClassifier(ds, p)
		ex := analysis.Exclusive(cls)
		fmt.Fprintf(out, "%v: union of hosts seen by any origin: %d\n", p, len(cls.Union()))
		fmt.Fprintf(out, "%-8s%10s%12s\n", "origin", "coverage", "exclusive")
		for _, o := range origin.StudySet() {
			fmt.Fprintf(out, "%-8v%9.2f%%%12d\n", o, 100*tab.Mean(o, false), len(ex.Accessible[o]))
		}
	}
}

// readHitlist parses a scan target file: one address per line, blank lines
// and #-comments skipped.
func readHitlist(path string) ([]ip.Addr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var targets []ip.Addr
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ip.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
		}
		targets = append(targets, a)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%s: no targets", path)
	}
	return targets, nil
}

// interruptionMessage describes where a canceled run stopped: the lifecycle
// stage and, when the interruption landed inside a specific scan, the
// (origin, protocol, trial) tuple — e.g. "interrupted during the sweep
// stage of scan US64/HTTP/trial 2".
func interruptionMessage(err error) string {
	stage, hasStage := core.InterruptedStage(err)
	var serr *core.ScanError
	hasScan := errors.As(err, &serr)
	switch {
	case hasStage && hasScan:
		return fmt.Sprintf("interrupted during the %s stage of scan %v/%v/trial %d",
			stage, serr.Origin, serr.Proto, serr.Trial)
	case hasScan:
		return fmt.Sprintf("interrupted during scan %v/%v/trial %d",
			serr.Origin, serr.Proto, serr.Trial)
	case hasStage:
		return fmt.Sprintf("interrupted during the %s stage", stage)
	default:
		return "interrupted"
	}
}

// flushDataset writes the study's dataset (complete or partial) to path.
// Flush failures are reported but never mask the run's own outcome.
func flushDataset(path string, study *core.Study) {
	if path == "" || study.DS == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "originscan: creating dataset file: %v\n", err)
		return
	}
	if err := study.DS.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "originscan: writing dataset: %v\n", err)
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "originscan: closing dataset: %v\n", err)
		return
	}
	fmt.Printf("dataset (%d scans) written to %s\n", study.DS.Len(), path)
}

// runFollowUp executes and prints the §7 follow-up experiment (Table 4b,
// Figure 18).
func runFollowUp(ctx context.Context, spec world.Spec) {
	fmt.Println("\nFollow-up experiment: co-located Tier-1 transits @ Equinix CHI4 (Table 4b, Figure 18)")
	fmt.Println("=====================================================================================")
	_, ds, err := experiment.FollowUp(ctx, spec)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			exitf(exitCanceled, "interrupted during the follow-up experiment")
		}
		fatalf("follow-up: %v", err)
	}
	tab := analysis.Coverage(ds, proto.HTTP)
	fmt.Printf("%-7s", "origin")
	for _, o := range origin.FollowUpSet() {
		fmt.Printf("%9s", o)
	}
	fmt.Println()
	fmt.Printf("%-7s", "mean")
	for _, o := range origin.FollowUpSet() {
		fmt.Printf("%8.2f%%", 100*tab.Mean(o, false))
	}
	fmt.Println()

	levels, err := analysis.MultiOrigin(ctx, ds, proto.HTTP, origin.FollowUpSet(), false)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			exitf(exitCanceled, "interrupted during the follow-up analysis")
		}
		fatalf("follow-up: %v", err)
	}
	triad := analysis.CoverageOfCombo(ds, proto.HTTP,
		origin.Set{origin.HE, origin.NTTC, origin.TELIA}, false)
	if len(levels) >= 3 {
		k3 := levels[2]
		fmt.Printf("3-origin coverage: median %.2f%%, min %.2f%% (%v), max %.2f%% (%v)\n",
			100*k3.Median, 100*k3.Min, k3.Worst.Origins, 100*k3.Max, k3.Best.Origins)
		fmt.Printf("co-located HE-NTT-TELIA triad: %.2f%% (Δ vs median %.2f pts)\n",
			100*triad, 100*(k3.Median-triad))
	}
}

// writeCSVs dumps each figure's data as a CSV file for external plotting.
func writeCSVs(ctx context.Context, dir string, study *core.Study) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func(*os.File) error
	}{
		{"coverage.csv", func(f *os.File) error { return report.CSVCoverage(f, study) }},
		{"missing_breakdown.csv", func(f *os.File) error { return report.CSVMissingBreakdown(f, study) }},
		{"loss_spread_cdf.csv", func(f *os.File) error { return report.CSVSpreadCDF(f, study) }},
		{"multi_origin.csv", func(f *os.File) error { return report.CSVMultiOrigin(ctx, f, study) }},
		{"alibaba_timeline.csv", func(f *os.File) error {
			return report.CSVTimeline(f, study, []origin.ID{origin.US1, origin.US64, origin.AU, origin.CEN}, 0)
		}},
		{"countries.csv", func(f *os.File) error { return report.CSVCountryTable(f, study) }},
	}
	for _, wr := range writers {
		f, err := os.Create(dir + "/" + wr.name)
		if err != nil {
			return err
		}
		if err := wr.fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// parseByteSize parses a human byte size: a plain integer is bytes, and
// the binary suffixes KiB/MiB/GiB (plus bare K/M/G and KB/MB/GB, all
// treated as powers of two — scan tooling convention) scale it.
func parseByteSize(s string) (int64, error) {
	upper := strings.ToUpper(strings.TrimSpace(s))
	shift := 0
	// Longest suffixes first so "MIB" wins over "B".
	for _, suf := range []struct {
		text  string
		shift int
	}{
		{"KIB", 10}, {"MIB", 20}, {"GIB", 30},
		{"KB", 10}, {"MB", 20}, {"GB", 30},
		{"K", 10}, {"M", 20}, {"G", 30}, {"B", 0},
	} {
		if strings.HasSuffix(upper, suf.text) && len(upper) > len(suf.text) {
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.text))
			shift = suf.shift
			break
		}
	}
	n, err := strconv.ParseInt(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	v := n << shift
	if shift > 0 && v>>shift != n {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return v, nil
}

// traceFlush seals the -trace-dir flight recorder: the journal gets its
// final metrics snapshot and the Chrome trace is written next to it. It is
// a no-op until -trace-dir installs the real closure, and idempotent after
// (both the deferred call and exitf run it — exitf skips defers via
// os.Exit, and a multi-hour study should never lose its trace to the exit
// path).
var traceFlush = func() {}

func setTraceFlush(reg *core.Telemetry, dir string) {
	traceFlush = func() {
		traceFlush = func() {}
		if err := reg.CloseRecorder(); err != nil {
			fmt.Fprintf(os.Stderr, "originscan: sealing trace journal: %v\n", err)
		}
		path := filepath.Join(dir, "trace.json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "originscan: creating Chrome trace: %v\n", err)
			return
		}
		if err := reg.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "originscan: writing Chrome trace: %v\n", err)
			return
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "originscan: closing Chrome trace: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "originscan: trace journal and %s written\n", path)
	}
}

func fatalf(format string, args ...any) {
	exitf(exitFailure, format, args...)
}

func exitf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "originscan: "+format+"\n", args...)
	traceFlush()
	os.Exit(code)
}
