package main

import "testing"

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"123", 123, true},
		{"64B", 64, true},
		{"1K", 1 << 10, true},
		{"1KB", 1 << 10, true},
		{"1KiB", 1 << 10, true},
		{"256MiB", 256 << 20, true},
		{"256mib", 256 << 20, true},
		{" 2 GiB ", 2 << 30, true},
		{"2G", 2 << 30, true},
		{"", 0, false},
		{"MiB", 0, false},
		{"-1MiB", 0, false},
		{"1.5GiB", 0, false},
		{"9999999999G", 0, false}, // overflows int64
	}
	for _, tc := range cases {
		got, err := parseByteSize(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseByteSize(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
