// Command report re-runs the paper's analyses over a previously saved
// dataset (written by originscan -dataset). The world is regenerated from
// the same seed and scale so topology lookups (AS, country) match the scans.
//
// Usage:
//
//	report -in dataset.json [-seed N] [-scale F] [-trials N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/results"
	"repro/internal/world"
)

func main() {
	var (
		in     = flag.String("in", "", "dataset JSON written by originscan -dataset (required)")
		seed   = flag.Uint64("seed", 2020, "study seed the dataset was collected with")
		scale  = flag.Float64("scale", 0.001, "world scale the dataset was collected with")
		trials = flag.Int("trials", 3, "trials the dataset was collected with")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "report: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	ds, err := results.ReadJSON(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	study, err := core.New(ctx, experiment.Config{
		WorldSpec: world.Spec{Seed: *seed, Scale: *scale},
		Trials:    *trials,
	})
	if err != nil {
		fatalf("%v", err)
	}
	study.UseDataset(ds)
	if err := report.All(ctx, os.Stdout, study); err != nil {
		if errors.Is(err, core.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "report: interrupted")
			os.Exit(130)
		}
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "report: "+format+"\n", args...)
	os.Exit(1)
}
