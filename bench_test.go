// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark regenerates its table/figure from a shared small-scale study
// (the fixture runs the full 3-trial × 3-protocol multi-origin scan once
// per process) and reports the headline quantity as a custom metric so the
// bench output doubles as a results summary.
//
// Run with: go test -bench=. -benchmem
package scanorigin

import (
	"context"
	"io"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/report"
	"repro/internal/world"
)

var (
	benchOnce sync.Once
	benchStu  *core.Study
	benchErr  error
)

func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStu, benchErr = core.New(context.Background(), experiment.Config{
			WorldSpec:      world.TestSpec(2020),
			IncludeCarinet: true,
		})
		if benchErr == nil {
			benchErr = benchStu.Run(context.Background())
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStu
}

// BenchmarkFig01Coverage regenerates Figure 1: per-origin host coverage.
func BenchmarkFig01Coverage(b *testing.B) {
	s := benchStudy(b)
	var tab analysis.CoverageTable
	for i := 0; i < b.N; i++ {
		tab = s.Fig1Coverage(proto.HTTP)
	}
	b.ReportMetric(100*tab.Mean(origin.CEN, false), "censys-cov-%")
	b.ReportMetric(100*tab.Mean(origin.US64, false), "us64-cov-%")
}

// BenchmarkFig02MissingBreakdown regenerates Figure 2.
func BenchmarkFig02MissingBreakdown(b *testing.B) {
	s := benchStudy(b)
	var bds []analysis.Breakdown
	for i := 0; i < b.N; i++ {
		bds = s.Fig2MissingBreakdown(proto.HTTP)
	}
	var trans, total int
	for _, bd := range bds {
		trans += bd.Counts[analysis.CatTransientHost] + bd.Counts[analysis.CatTransientNet]
		total += bd.TotalMissing()
	}
	if total > 0 {
		b.ReportMetric(100*float64(trans)/float64(total), "transient-share-%")
	}
}

// BenchmarkFig03LongTermOverlap regenerates Figure 3.
func BenchmarkFig03LongTermOverlap(b *testing.B) {
	s := benchStudy(b)
	var hist []int
	for i := 0; i < b.N; i++ {
		hist = s.Fig3LongTermOverlap(proto.HTTP, origin.Set{origin.CEN})
	}
	total, single := 0, 0
	for k, n := range hist {
		total += n
		if k == 0 {
			single = n
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(single)/float64(total), "single-origin-%")
	}
}

// BenchmarkFig04ASDistribution regenerates Figure 4.
func BenchmarkFig04ASDistribution(b *testing.B) {
	s := benchStudy(b)
	var dist []analysis.ASConcentration
	for i := 0; i < b.N; i++ {
		dist = s.Fig4ASDistribution(proto.HTTP)
	}
	for _, d := range dist {
		if d.Origin == origin.CEN && len(d.TopShares) >= 3 {
			b.ReportMetric(100*d.TopShares[2], "censys-top3-as-%")
		}
	}
}

// BenchmarkFig05LostASes regenerates Figure 5.
func BenchmarkFig05LostASes(b *testing.B) {
	s := benchStudy(b)
	var rows []analysis.LostASRow
	for i := 0; i < b.N; i++ {
		rows = s.Fig5LostASes(proto.HTTP)
	}
	for _, r := range rows {
		if r.Origin == origin.BR {
			b.ReportMetric(float64(r.Full), "brazil-full-ases")
		}
	}
}

// BenchmarkFig06ExclusiveCountry regenerates Figure 6.
func BenchmarkFig06ExclusiveCountry(b *testing.B) {
	s := benchStudy(b)
	var cells []analysis.CountryCell
	for i := 0; i < b.N; i++ {
		cells = s.Fig6ExclusiveByCountry(proto.HTTP)
	}
	inCountry := 0
	for _, c := range cells {
		if c.InCountry {
			inCountry += c.Hosts
		}
	}
	b.ReportMetric(float64(inCountry), "in-country-exclusive-hosts")
}

// BenchmarkFig07ExclusiveAS regenerates Figure 7.
func BenchmarkFig07ExclusiveAS(b *testing.B) {
	s := benchStudy(b)
	var shares []analysis.ASShare
	for i := 0; i < b.N; i++ {
		shares = s.Fig7ExclusiveByAS(proto.HTTP, 3)
	}
	b.ReportMetric(float64(len(shares)), "as-share-rows")
}

// BenchmarkFig08TransientOverlap regenerates Figure 8.
func BenchmarkFig08TransientOverlap(b *testing.B) {
	s := benchStudy(b)
	var hist []int
	for i := 0; i < b.N; i++ {
		hist = s.Fig8TransientOverlap(proto.HTTP)
	}
	total, single := 0, 0
	for k, n := range hist {
		total += n
		if k == 0 {
			single = n
		}
	}
	if total > 0 {
		b.ReportMetric(100*float64(single)/float64(total), "single-origin-%")
	}
}

// BenchmarkFig09LossSpreadCDF regenerates Figure 9.
func BenchmarkFig09LossSpreadCDF(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		spreads, plain, weighted := s.Fig9LossSpread(proto.HTTP)
		_ = spreads
		_ = plain
		_ = weighted
	}
	_, plain, _ := s.Fig9LossSpread(proto.HTTP)
	zero := 0.0
	for _, p := range plain {
		if p.X == 0 {
			zero = p.F
		}
	}
	b.ReportMetric(100*zero, "ases-zero-spread-%")
}

// BenchmarkFig10LossVsDrop regenerates Figure 10.
func BenchmarkFig10LossVsDrop(b *testing.B) {
	s := benchStudy(b)
	var pts []analysis.OriginASPoint
	for i := 0; i < b.N; i++ {
		pts = s.Fig10LossVsDrop(proto.HTTP, world.ProfTelecomIT)
	}
	b.ReportMetric(float64(len(pts)), "origins-plotted")
}

// BenchmarkFig11BestWorst regenerates Figure 11.
func BenchmarkFig11BestWorst(b *testing.B) {
	s := benchStudy(b)
	var rep analysis.StabilityReport
	for i := 0; i < b.N; i++ {
		rep = s.Fig11BestWorst(proto.HTTP)
	}
	if rep.ASesConsidered > 0 {
		b.ReportMetric(100*float64(rep.Flips)/float64(rep.ASesConsidered), "flip-%")
	}
}

// BenchmarkFig12AlibabaTimeline regenerates Figure 12.
func BenchmarkFig12AlibabaTimeline(b *testing.B) {
	s := benchStudy(b)
	var tl []analysis.HourlyOutcome
	for i := 0; i < b.N; i++ {
		tl = s.Fig12AlibabaTimeline(origin.US1, 0)
	}
	resets := 0
	for _, h := range tl {
		resets += h.Reset
	}
	b.ReportMetric(float64(resets), "us1-resets")
}

// BenchmarkFig13SSHRetry regenerates Figure 13 (includes live re-grabs).
func BenchmarkFig13SSHRetry(b *testing.B) {
	s := benchStudy(b)
	var curves []experiment.RetryCurve
	for i := 0; i < b.N; i++ {
		curves, _ = s.Fig13SSHRetry(context.Background(), 3, 8)
	}
	if len(curves) > 0 && len(curves[0].Success) > 8 {
		b.ReportMetric(100*curves[0].Success[8], "retry8-success-%")
	}
}

// BenchmarkFig14SSHBreakdown regenerates Figure 14.
func BenchmarkFig14SSHBreakdown(b *testing.B) {
	s := benchStudy(b)
	var bks []analysis.SSHBreakdown
	for i := 0; i < b.N; i++ {
		bks = s.Fig14SSHCauses()
	}
	for _, bk := range bks {
		if bk.Origin == origin.US1 && bk.Missing > 0 {
			b.ReportMetric(100*float64(bk.Counts[analysis.CauseProbabilistic])/float64(bk.Missing), "probabilistic-%")
		}
	}
}

// BenchmarkFig15MultiOriginHTTP regenerates Figure 15.
func BenchmarkFig15MultiOriginHTTP(b *testing.B) {
	s := benchStudy(b)
	var levels []analysis.MultiOriginLevel
	for i := 0; i < b.N; i++ {
		levels, _ = s.Fig15MultiOrigin(context.Background(), proto.HTTP, false)
	}
	if len(levels) >= 3 {
		b.ReportMetric(100*levels[2].Median, "k3-median-cov-%")
		b.ReportMetric(100*levels[2].Sigma, "k3-sigma-%")
	}
}

// BenchmarkFig16ExclusiveHTTPSSSH regenerates Figure 16.
func BenchmarkFig16ExclusiveHTTPSSSH(b *testing.B) {
	s := benchStudy(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Fig6ExclusiveByCountry(proto.HTTPS)) + len(s.Fig6ExclusiveByCountry(proto.SSH))
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkFig17MultiOriginHTTPSSSH regenerates Figure 17.
func BenchmarkFig17MultiOriginHTTPSSSH(b *testing.B) {
	s := benchStudy(b)
	var httpsMed, sshMed float64
	for i := 0; i < b.N; i++ {
		lh, _ := s.Fig15MultiOrigin(context.Background(), proto.HTTPS, false)
		ls, _ := s.Fig15MultiOrigin(context.Background(), proto.SSH, false)
		httpsMed, sshMed = lh[2].Median, ls[2].Median
	}
	b.ReportMetric(100*httpsMed, "https-k3-median-%")
	b.ReportMetric(100*sshMed, "ssh-k3-median-%")
}

// BenchmarkFig18FollowUp regenerates Figure 18 + Table 4b (full re-scan of
// the follow-up world each iteration).
func BenchmarkFig18FollowUp(b *testing.B) {
	var triad, median float64
	for i := 0; i < b.N; i++ {
		_, ds, err := experiment.FollowUp(context.Background(), world.Spec{Seed: 2020, Scale: 0.00003})
		if err != nil {
			b.Fatal(err)
		}
		levels, err := analysis.MultiOrigin(context.Background(), ds, proto.HTTP, origin.FollowUpSet(), false)
		if err != nil {
			b.Fatal(err)
		}
		triad = analysis.CoverageOfCombo(ds, proto.HTTP,
			origin.Set{origin.HE, origin.NTTC, origin.TELIA}, false)
		median = levels[2].Median
	}
	b.ReportMetric(100*triad, "colocated-triad-cov-%")
	b.ReportMetric(100*median, "k3-median-cov-%")
}

// BenchmarkTab1ExclusiveShare regenerates Table 1.
func BenchmarkTab1ExclusiveShare(b *testing.B) {
	s := benchStudy(b)
	var rows []analysis.ShareRow
	for i := 0; i < b.N; i++ {
		rows = s.Tab1ExclusiveShare(proto.HTTP)
	}
	for _, r := range rows {
		if r.Origin == origin.CEN {
			b.ReportMetric(r.InaccessiblePct, "censys-inacc-share-%")
		}
	}
}

// BenchmarkTab2Countries regenerates Table 2.
func BenchmarkTab2Countries(b *testing.B) {
	s := benchStudy(b)
	var rows []analysis.CountryRow
	for i := 0; i < b.N; i++ {
		rows = s.Tab2Countries(proto.HTTP)
	}
	for _, r := range rows {
		if r.Origin == origin.CEN && r.Country == "BD" {
			b.ReportMetric(r.Pct, "censys-bd-inacc-%")
		}
	}
}

// BenchmarkTab3TransientASes regenerates Table 3.
func BenchmarkTab3TransientASes(b *testing.B) {
	s := benchStudy(b)
	var topDelta float64
	for i := 0; i < b.N; i++ {
		spreads, _, _ := s.Fig9LossSpread(proto.HTTP)
		if len(spreads) > 0 {
			topDelta = spreads[0].Delta
		}
	}
	b.ReportMetric(100*topDelta, "top-as-delta-%")
}

// BenchmarkTab4Coverage regenerates Table 4a (all protocols).
func BenchmarkTab4Coverage(b *testing.B) {
	s := benchStudy(b)
	var inter float64
	for i := 0; i < b.N; i++ {
		for _, p := range proto.All() {
			tab := s.Fig1Coverage(p)
			inter = tab.Intersection[0]
		}
	}
	b.ReportMetric(100*inter, "ssh-intersection-%")
}

// BenchmarkTab4bFollowUp regenerates Table 4b.
func BenchmarkTab4bFollowUp(b *testing.B) {
	var cen float64
	for i := 0; i < b.N; i++ {
		_, ds, err := experiment.FollowUp(context.Background(), world.Spec{Seed: 2020, Scale: 0.00003})
		if err != nil {
			b.Fatal(err)
		}
		tab := analysis.Coverage(ds, proto.HTTP)
		cen = tab.Mean(origin.CEN, false)
	}
	b.ReportMetric(100*cen, "fresh-censys-cov-%")
}

// BenchmarkTab5CountriesHTTPSSSH regenerates Table 5.
func BenchmarkTab5CountriesHTTPSSSH(b *testing.B) {
	s := benchStudy(b)
	var n int
	for i := 0; i < b.N; i++ {
		n = len(s.Tab2Countries(proto.HTTPS)) + len(s.Tab2Countries(proto.SSH))
	}
	b.ReportMetric(float64(n), "rows")
}

// BenchmarkStatMcNemar regenerates §3's pairwise tests.
func BenchmarkStatMcNemar(b *testing.B) {
	s := benchStudy(b)
	var pairs []analysis.McNemarPair
	for i := 0; i < b.N; i++ {
		pairs = s.McNemar(proto.HTTP, 0)
	}
	sig := 0
	for _, p := range pairs {
		if p.PAdjusted < 0.001 {
			sig++
		}
	}
	b.ReportMetric(float64(sig), "significant-pairs")
}

// BenchmarkStatSpearman regenerates §4.4's country-size correlation.
func BenchmarkStatSpearman(b *testing.B) {
	s := benchStudy(b)
	var rho float64
	for i := 0; i < b.N; i++ {
		rho = s.CountryCorrelation(proto.HTTP).Rho
	}
	b.ReportMetric(rho, "rho")
}

// BenchmarkSec52PacketLoss regenerates §5.2's estimator and correlation.
func BenchmarkSec52PacketLoss(b *testing.B) {
	s := benchStudy(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = s.PacketLoss(proto.HTTP, origin.AU, 0).Rate
		_ = s.DropVsTransient(proto.HTTP)
	}
	b.ReportMetric(100*rate, "au-drop-%")
}

// BenchmarkSec53Bursts regenerates §5.3's burst attribution.
func BenchmarkSec53Bursts(b *testing.B) {
	s := benchStudy(b)
	var rep analysis.BurstReport
	for i := 0; i < b.N; i++ {
		rep = s.Bursts(proto.HTTP)
	}
	b.ReportMetric(100*rep.SingleOriginBursts, "single-origin-bursts-%")
}

// BenchmarkSec7Probes regenerates §7's probe statistics.
func BenchmarkSec7Probes(b *testing.B) {
	s := benchStudy(b)
	var ps analysis.ProbeStats
	for i := 0; i < b.N; i++ {
		ps = s.Probes(proto.HTTP, origin.AU, 0)
	}
	b.ReportMetric(100*ps.BothLostPortion, "both-lost-%")
}

// BenchmarkFullReport renders every table and figure once per iteration.
func BenchmarkFullReport(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		report.All(context.Background(), io.Discard, s)
	}
}

// BenchmarkEndToEndScan measures one full single-origin scan+grab cycle
// over a small world (the scanner and fabric hot path).
func BenchmarkEndToEndScan(b *testing.B) {
	st, err := experiment.NewStudy(context.Background(), experiment.Config{
		WorldSpec: world.Spec{Seed: 3, Scale: 0.00002},
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ScanOne(context.Background(), origin.US1, proto.HTTP, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec8Agreement regenerates the §8 Heidemann comparison.
func BenchmarkSec8Agreement(b *testing.B) {
	s := benchStudy(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = s.Agreement(proto.HTTP, 0).Mean
	}
	b.ReportMetric(100*mean, "mean-agreement-%")
}

// BenchmarkSec8ProbeSweep regenerates the single-origin multi-probe curve
// (Durumeric et al. 2012 comparison), re-scanning with 1..3 probes.
func BenchmarkSec8ProbeSweep(b *testing.B) {
	s := benchStudy(b)
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := s.ProbeSweep(context.Background(), origin.US1, proto.HTTP, 0, 3, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].Coverage
	}
	b.ReportMetric(100*last, "probes3-cov-%")
}

// BenchmarkAnalysisPasses runs the allocation-heavy analysis passes back to
// back over the shared fixture: a full classifier rebuild plus the set-algebra
// passes (coverage table, missing breakdown, exclusivity, transient spread,
// packet loss, probe stats). Run with -benchmem: the bytes/op trajectory of
// the columnar result store is recorded in BENCH_columnar.json.
func BenchmarkAnalysisPasses(b *testing.B) {
	s := benchStudy(b)
	topo := s.Topo()
	// Warm the dataset's ground-truth cache so iterations measure the
	// passes, not the first-touch union build.
	for t := 0; t < s.DS.Trials; t++ {
		s.DS.GroundTruth(proto.HTTP, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := analysis.NewClassifier(s.DS, proto.HTTP)
		_ = analysis.Coverage(s.DS, proto.HTTP)
		_ = analysis.MissingBreakdown(c)
		_ = analysis.Exclusive(c)
		_ = analysis.TransientLossSpread(c, topo, 2)
		_ = analysis.PacketLoss(s.DS, topo, proto.HTTP, origin.AU, 0, 5)
		_ = analysis.Probes(s.DS, proto.HTTP, origin.AU, 0)
	}
}

// benchStudyRun times Study.Run (world and scenario construction excluded)
// for one parallelism / shard configuration: the perf trajectory of the
// deterministic parallel scan engine. All configurations produce
// bit-identical datasets (TestParallelMatchesSerial), so these measure pure
// execution-strategy cost.
func benchStudyRun(b *testing.B, par, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := experiment.NewStudy(context.Background(), experiment.Config{
			WorldSpec:   world.TestSpec(2020),
			Trials:      2,
			Protocols:   []proto.Protocol{proto.HTTP, proto.SSH},
			Origins:     origin.Set{origin.AU, origin.US1, origin.US64, origin.CEN},
			Parallelism: par,
			ScanShards:  shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudySerial is the serial reference path: one scan at a time,
// live stateful IDSes, unsharded sweeps.
func BenchmarkStudySerial(b *testing.B) { benchStudyRun(b, 1, 1) }

// BenchmarkStudyParallel{2,4,8} run the same study on 2/4/8 scan workers
// with precomputed IDS schedules.
func BenchmarkStudyParallel2(b *testing.B) { benchStudyRun(b, 2, 1) }
func BenchmarkStudyParallel4(b *testing.B) { benchStudyRun(b, 4, 1) }
func BenchmarkStudyParallel8(b *testing.B) { benchStudyRun(b, 8, 1) }

// BenchmarkStudyParallel8Sharded4 adds intra-scan sweep sharding on top of
// the 8-worker pool.
func BenchmarkStudyParallel8Sharded4(b *testing.B) { benchStudyRun(b, 8, 4) }

// benchV6StudyRun times the IPv6 hitlist study (default v6 world, ≈2.3k
// hosts + stale/unrouted hitlist tails) for one parallelism configuration.
// The v4 benchmarks above are untouched by the dual-stack core — comparing
// BenchmarkStudySerial against BENCH_fullspace.json's capture is the
// no-regression check for the 128-bit address widening.
func benchV6StudyRun(b *testing.B, par, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := experiment.NewStudy(context.Background(), experiment.Config{
			WorldSpec:   world.Spec{Seed: 2020},
			Family:      world.FamilyIPv6,
			V6Spec:      world.DefaultV6Spec(2020),
			Trials:      2,
			Protocols:   []proto.Protocol{proto.HTTP, proto.SSH},
			Origins:     origin.Set{origin.AU, origin.US1, origin.US64, origin.CEN},
			Parallelism: par,
			ScanShards:  shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(st.World.Hitlist())), "hitlist-targets")
		}
		b.StartTimer()
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV6HitlistStudySerial is the v6 serial reference path.
func BenchmarkV6HitlistStudySerial(b *testing.B) { benchV6StudyRun(b, 1, 1) }

// BenchmarkV6HitlistStudyParallel4 runs the same v6 study on 4 scan workers
// with 4-way sharded hitlist walks.
func BenchmarkV6HitlistStudyParallel4(b *testing.B) { benchV6StudyRun(b, 4, 4) }
