// Sshretry: reproduce the paper's §6 discovery that SSH hosts refuse
// connections probabilistically (OpenSSH MaxStartups) and that immediate
// retries recover them (IMC'20, Figure 13). Runs the SSH study, attributes
// the missing hosts, then sweeps the retry budget over the worst networks.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	ctx := context.Background()
	study, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: world.TestSpec(11),
		Protocols: []proto.Protocol{proto.SSH},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Why do origins miss SSH hosts?
	c := analysis.NewClassifier(ds, proto.SSH)
	topo := analysis.WorldTopo{W: study.World}
	fmt.Println("why origins miss SSH hosts (summed over trials):")
	for _, b := range analysis.SSHCauses(c, topo, study.Scenario.Alibaba.ASes) {
		if b.Missing == 0 {
			continue
		}
		fmt.Printf("  %-5s missing=%-5d alibaba-temporal=%d probabilistic=%d other=%d\n",
			b.Origin, b.Missing,
			b.Counts[analysis.CauseAlibabaTemporal],
			b.Counts[analysis.CauseProbabilistic],
			b.Counts[analysis.CauseOther])
	}

	// The fix: retry the handshake.
	fmt.Println("\nSSH handshake success vs retry budget (top transient networks, from US1):")
	curves, err := study.SSHRetry(ctx, ds, 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, curve := range curves {
		fmt.Printf("  AS%-7d %-28s hosts=%-3d ", curve.AS, curve.ASName, curve.Hosts)
		for r, f := range curve.Success {
			if r%2 == 0 {
				fmt.Printf(" %d:%5.1f%%", r, 100*f)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nRetrying the handshake up to 8 times recovers most probabilistically")
	fmt.Println("blocked hosts, as the paper observed for EGI Hosting and Psychz Networks.")
}
