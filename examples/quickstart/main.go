// Quickstart: generate a small synthetic Internet, run one synchronized
// HTTP trial from all seven origins, and print each origin's coverage of
// the ground-truth hosts.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	ctx := context.Background()
	study, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: world.TestSpec(1),
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	gt := ds.GroundTruth(proto.HTTP, 0)
	fmt.Printf("ground truth: %d live HTTP hosts (world has %d)\n\n",
		len(gt), study.World.HostCount(proto.HTTP))
	fmt.Println("coverage by origin (2 probes / 1 probe):")
	for _, o := range origin.StudySet() {
		fmt.Printf("  %-5s %6.2f%% / %6.2f%%\n", o,
			100*ds.Coverage(o, proto.HTTP, 0, false),
			100*ds.Coverage(o, proto.HTTP, 0, true))
	}
	fmt.Println("\nEvery origin sees a different slice of the Internet — no")
	fmt.Println("single vantage point reaches every live host (IMC'20, Fig. 1).")
}
