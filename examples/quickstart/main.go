// Quickstart: generate a small synthetic Internet, run one synchronized
// HTTP trial from all seven origins, and print each origin's coverage of
// the ground-truth hosts. A live progress line is shown on stderr while
// the scans run; pass -quiet to suppress it (e.g. when scripting).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/telemetry"
	"repro/internal/world"
)

func main() {
	quiet := flag.Bool("quiet", false, "suppress the stderr progress line")
	flag.Parse()

	ctx := context.Background()
	reg := telemetry.New()
	study, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: world.TestSpec(1),
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
		Telemetry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	var progress *telemetry.Progress
	if !*quiet {
		progress = telemetry.StartProgress(reg, os.Stderr, 2*time.Second)
	}
	ds, err := study.Run(ctx)
	progress.Stop()
	if err != nil {
		log.Fatal(err)
	}

	gt := ds.GroundTruth(proto.HTTP, 0)
	fmt.Printf("ground truth: %d live HTTP hosts (world has %d)\n\n",
		len(gt), study.World.HostCount(proto.HTTP))
	fmt.Println("coverage by origin (2 probes / 1 probe):")
	for _, o := range origin.StudySet() {
		fmt.Printf("  %-5s %6.2f%% / %6.2f%%\n", o,
			100*ds.Coverage(o, proto.HTTP, 0, false),
			100*ds.Coverage(o, proto.HTTP, 0, true))
	}
	fmt.Println("\nEvery origin sees a different slice of the Internet — no")
	fmt.Println("single vantage point reaches every live host (IMC'20, Fig. 1).")
}
