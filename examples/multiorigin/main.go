// Multiorigin: the paper's headline recommendation quantified — run the
// full three-trial HTTP study and show how coverage and its variance change
// as scans combine 1, 2, 3, ... origins (IMC'20 §7, Figure 15).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	ctx := context.Background()
	study, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: world.TestSpec(7),
		Protocols: []proto.Protocol{proto.HTTP},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-origin HTTP coverage across all origin combinations")
	fmt.Println("(median over C(7,k) subsets, averaged over 3 trials)")
	fmt.Println()
	fmt.Printf("%-3s%12s%12s%12s%10s\n", "k", "median", "min", "max", "sigma")
	levels, err := analysis.MultiOrigin(ctx, ds, proto.HTTP, origin.StudySet(), false)
	if err != nil {
		log.Fatal(err)
	}
	for _, lvl := range levels {
		fmt.Printf("%-3d%11.2f%%%11.2f%%%11.2f%%%9.3f%%\n",
			lvl.K, 100*lvl.Median, 100*lvl.Min, 100*lvl.Max, 100*lvl.Sigma)
	}
	best := levels[2].Best
	worst := levels[2].Worst
	fmt.Printf("\nbest triad:  %v at %.2f%%\n", best.Origins, 100*best.Coverage)
	fmt.Printf("worst triad: %v at %.2f%%\n", worst.Origins, 100*worst.Coverage)
	fmt.Println("\nTwo to three sufficiently diverse origins recover most transient")
	fmt.Println("loss and collapse the variance — the exact choice barely matters.")
}
