// Burstoutage: the paper's §5.3 machinery — classify missing hosts as
// transient vs long-term, build hourly loss series per (origin, AS), and
// detect short-lived burst outages with the 4-hour rolling window and 2σ
// threshold.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	ctx := context.Background()
	study, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: world.TestSpec(23),
		Protocols: []proto.Protocol{proto.HTTP},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	c := analysis.NewClassifier(ds, proto.HTTP)
	topo := analysis.WorldTopo{W: study.World}

	fmt.Println("missing-host classification (trial 1, % of ground truth):")
	for _, b := range analysis.MissingBreakdown(c) {
		if b.Trial != 0 {
			continue
		}
		fmt.Printf("  %-5s transient=%5.2f%% long-term=%5.2f%% unknown=%5.2f%%\n",
			b.Origin,
			100*(b.Frac(analysis.CatTransientHost)+b.Frac(analysis.CatTransientNet)),
			100*(b.Frac(analysis.CatLongTermHost)+b.Frac(analysis.CatLongTermNet)),
			100*b.Frac(analysis.CatUnknown))
	}

	rep := analysis.Bursts(c, topo, 21)
	fmt.Printf("\nburst outages detected (hourly series, 4h rolling mean, 2σ):\n")
	fmt.Printf("  destination ASes with ≥1 burst: %.1f%%\n", 100*rep.ASesWithBurst)
	fmt.Printf("  bursts hitting a single origin: %.1f%%\n", 100*rep.SingleOriginBursts)
	fmt.Printf("  bursts within three origins:    %.1f%%\n", 100*rep.WithinThree)
	fmt.Println("\nshare of each origin's transient loss that coincides with a burst:")
	for _, o := range origin.StudySet() {
		fmt.Printf("  %-5s", o)
		for _, f := range rep.PerOriginTrial[o] {
			fmt.Printf(" %5.1f%%", 100*f)
		}
		fmt.Println("   (per trial)")
	}
	fmt.Println("\nThe paper attributes 14-36% of transient loss to short, localized")
	fmt.Println("outages that usually affect a single scan origin at a time.")
}
