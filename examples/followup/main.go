// Followup: the paper's September 2020 follow-up experiment (§7, Table 4b,
// Figure 18) — do three Tier-1 transit providers co-located in one data
// center give the same coverage boost as three geographically diverse
// origins? (No: their paths converge, so their losses correlate, and the
// HE-NTT-TELIA triad is the worst of all triads.) Also shows Censys's
// fresh-IP recovery.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	ctx := context.Background()
	spec := world.TestSpec(2020)

	// Main study first, for the blocked-Censys baseline.
	main3, err := experiment.NewStudy(ctx, experiment.Config{
		WorldSpec: spec, Trials: 1, Protocols: []proto.Protocol{proto.HTTP},
	})
	if err != nil {
		log.Fatal(err)
	}
	mainDS, err := main3.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	blockedCensys := mainDS.Coverage(origin.CEN, proto.HTTP, 0, false)

	// Follow-up: two HTTP trials, co-located Tier-1s, fresh Censys IP.
	_, ds, err := experiment.FollowUp(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}

	tab := analysis.Coverage(ds, proto.HTTP)
	fmt.Println("follow-up HTTP coverage (2 trials, 2 probes):")
	for _, o := range origin.FollowUpSet() {
		note := ""
		switch o {
		case origin.CEN:
			note = "   <- fresh IP"
		case origin.HE, origin.NTTC, origin.TELIA:
			note = "   <- co-located @ Equinix CHI4"
		}
		fmt.Printf("  %-6s %6.2f%%%s\n", o, 100*tab.Mean(o, false), note)
	}
	fmt.Printf("\nCensys: %.2f%% with its blocked ranges -> %.2f%% with a fresh IP (paper: +5.5%%)\n",
		100*blockedCensys, 100*tab.Mean(origin.CEN, false))

	levels, err := analysis.MultiOrigin(ctx, ds, proto.HTTP, origin.FollowUpSet(), false)
	if err != nil {
		log.Fatal(err)
	}
	triad := analysis.CoverageOfCombo(ds, proto.HTTP,
		origin.Set{origin.HE, origin.NTTC, origin.TELIA}, false)
	k3 := levels[2]
	fmt.Printf("\nall 3-origin combinations: median %.2f%%, best %.2f%% (%v), worst %.2f%% (%v)\n",
		100*k3.Median, 100*k3.Max, k3.Best.Origins, 100*k3.Min, k3.Worst.Origins)
	fmt.Printf("co-located HE-NTT-TELIA:  %.2f%%  (%.2f pts below the median)\n",
		100*triad, 100*(k3.Median-triad))
	fmt.Println("\nDiversity matters more than provider count: transits sharing a")
	fmt.Println("data center share paths, so their transient losses overlap.")
}
