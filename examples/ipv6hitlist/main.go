// IPv6 hitlist study: generate the seeded sparse v6 world (routed /32
// providers holding dense /64 islands), scan its hitlist from all seven
// origins, and print each origin's coverage and exclusive hosts — the
// paper's origin-bias question asked of hitlist-driven IPv6 scanning.
//
// Pass -targets N to rescan only the first N hitlist entries via
// Config.Hitlist, the seam a real externally-gathered target list (e.g. an
// IPv6 hitlist service download) would plug into.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 2020, "study seed")
	targets := flag.Int("targets", 0, "scan only the first N hitlist entries (0 = whole hitlist)")
	flag.Parse()

	ctx := context.Background()
	cfg := experiment.Config{
		WorldSpec: world.Spec{Seed: *seed},
		Family:    world.FamilyIPv6,
		V6Spec:    world.DefaultV6Spec(*seed),
		Trials:    2,
		Protocols: []proto.Protocol{proto.HTTP, proto.SSH},
	}
	study, err := experiment.NewStudy(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hl := study.World.Hitlist()
	if *targets > 0 && *targets < len(hl) {
		// Re-plan over a caller-supplied target subset.
		cfg.Hitlist = hl[:*targets]
		if study, err = experiment.NewStudy(ctx, cfg); err != nil {
			log.Fatal(err)
		}
		hl = cfg.Hitlist
	}
	fmt.Printf("v6 world: %d live hosts across %d providers; scanning %d hitlist targets\n",
		study.World.NumHosts(), study.World.Routes.Len(), len(hl))

	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range cfg.Protocols {
		tab := analysis.Coverage(ds, p)
		cls := analysis.NewClassifier(ds, p)
		ex := analysis.Exclusive(cls)
		fmt.Printf("\n%v (union %d hosts):\n", p, len(cls.Union()))
		for _, o := range origin.StudySet() {
			fmt.Printf("  %-5s coverage %6.2f%%   exclusive %d\n",
				o, 100*tab.Mean(o, false), len(ex.Accessible[o]))
		}
	}
	fmt.Println("\nHitlist scanning does not remove origin bias: blocked and")
	fmt.Println("fenced islands keep some hosts visible from one vantage only.")
}
