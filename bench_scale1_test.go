// Scale-0.1 study benchmark: one US1/HTTP scan over a ~5.8M-host world
// (1/10 of the paper's Internet) driven through the full experiment path
// with the spill-to-disk result store under a fixed 128 MiB result budget.
// The measurement is as much about memory as time: the run records the
// process peak RSS (VmHWM) alongside the spill counters, so
// BENCH_scale1.json proves the budget actually held — the in-memory store
// at this scale peaks around 2.5 GiB; the spilled run must stay far below.
//
// Run via `make bench-scale1`; results land in BENCH_scale1.json.
package scanorigin

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// scale1Budget is the fixed whole-study result-memory budget the benchmark
// runs under; scale1RSSCeil is the process-wide peak-RSS bound the run must
// hold (world + scenario + replies + the budgeted store — well under the
// ≈2.5 GiB the unspilled store peaks at).
const (
	scale1Budget  = 128 << 20
	scale1RSSCeil = 2 << 30
)

func BenchmarkScale1Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.Config{
			WorldSpec: world.Spec{Seed: 2020, Scale: 0.1, StreamHosts: true},
			Trials:    1,
			Origins:   origin.Set{origin.US1},
			Protocols: []proto.Protocol{proto.HTTP},
			SpillDir:  b.TempDir(),
			MemBudget: scale1Budget,
		}
		st, err := experiment.NewStudy(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := st.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportScale1(b, ds)
	}
}

// reportScale1 validates the run and attaches the memory-proof metrics to
// the benchmark line (captured into BENCH_scale1.json by cmd/benchjson).
func reportScale1(b *testing.B, ds *results.Dataset) {
	b.Helper()
	res := ds.Scan(origin.US1, proto.HTTP, 0)
	if res == nil {
		b.Fatal("study produced no US1/HTTP scan")
	}
	rows, _ := res.SealStats()
	if rows == 0 {
		b.Fatal("sealed scan is empty")
	}
	st := res.SpillStats()
	if st.Segments == 0 {
		b.Fatalf("scan never spilled under the %d-byte budget: the benchmark is not measuring the spill path", int64(scale1Budget))
	}
	b.ReportMetric(float64(rows), "rows")
	b.ReportMetric(float64(st.Segments), "spill-segments")
	b.ReportMetric(float64(st.SpilledBytes)/(1<<20), "spilled-MiB")
	b.ReportMetric(float64(st.MergeFanIn), "merge-fanin")
	b.ReportMetric(st.MergeDuration.Seconds(), "merge-seconds")
	if rss, ok := telemetry.PeakRSSBytes(); ok {
		b.ReportMetric(float64(rss)/(1<<20), "peak-rss-MiB")
		if rss > scale1RSSCeil {
			b.Fatalf("peak RSS %d MiB exceeds the %d MiB ceiling: the budget did not hold",
				rss>>20, int64(scale1RSSCeil)>>20)
		}
	}
}
