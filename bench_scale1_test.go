// Scale-0.1 and Scale-1.0 study benchmarks: one US1/HTTP scan driven
// through the full experiment path with the spill-to-disk result store
// under a fixed 128 MiB result budget. The measurement is as much about
// memory as time: each run records the process peak RSS (VmHWM) alongside
// the spill counters, so BENCH_scale1.json proves the budget actually
// held — an unspilled store at Scale=0.1 would add GiBs on top of the
// world's own footprint; the spilled run must stay under its ceiling.
//
// BenchmarkScale1FullStudy is the ROADMAP's full-IPv4-scale milestone: the
// complete study over the ~68.6M-host Scale=1.0 world, unblocked by the
// grab fast path (≈53M L7 handshakes dominate its wall time). Its RSS
// ceiling is set by the world itself (streamed hosts + FIB + per-scan
// reply log), not the result store.
//
// Run via `make bench-scale1`; results land in BENCH_scale1.json.
package scanorigin

import (
	"context"
	"runtime/debug"
	"testing"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// scale1Budget is the fixed whole-study result-memory budget the benchmark
// runs under; scale1RSSCeil is the process-wide peak-RSS bound the run must
// hold (world + scenario + replies + the budgeted store — well under the
// ≈2.5 GiB the unspilled store peaks at).
const (
	scale1Budget = 128 << 20
	// scale1RSSCeil was 2 GiB when recorded on the PR-7 tree (1918 MiB
	// measured). The dual-stack address widening (ip.Addr 4 → 16 bytes;
	// zmap.Reply and the FIB host structures grew with it) pushed the
	// Scale=0.1 peak to 2791 MiB before the grab fast path and 2589 MiB
	// after it, so the ceiling is now 3 GiB — still well under the
	// ≈2.5 GiB+widening an unspilled store would add on top.
	scale1RSSCeil = 3 << 30
	// fullRSSCeil bounds the Scale=1.0 run, whose live heap is ~10 GiB
	// of world-scale structures — the per-scan L4 reply log alone is
	// ~2.2 GiB (68.6M replies × 32 B), the FIB's host-presence/service
	// arrays scale with it, and the sealed output is ~50M rows. Left to
	// GOGC=100 the GC doubles that live heap with run-to-run peaks
	// anywhere from 13 to 18+ GiB, so the benchmark pins fullMemLimit
	// as a Go soft memory limit: the GC then holds heap headroom
	// deterministically and the ceiling proves the whole study fits in
	// 16 GiB of RSS — bounded by the world, not by grab throughput or
	// result volume (an unspilled store would add ~25 GiB on its own).
	fullRSSCeil  = 16 << 30
	fullMemLimit = 14 << 30
)

func BenchmarkScale1Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.Config{
			WorldSpec: world.Spec{Seed: 2020, Scale: 0.1, StreamHosts: true},
			Trials:    1,
			Origins:   origin.Set{origin.US1},
			Protocols: []proto.Protocol{proto.HTTP},
			SpillDir:  b.TempDir(),
			MemBudget: scale1Budget,
		}
		st, err := experiment.NewStudy(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := st.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportScale1(b, ds, scale1RSSCeil)
	}
}

// BenchmarkScale1FullStudy is the Scale=1.0 end-to-end attempt: the whole
// study — full-IPv4 sweep plus ~53M L7 handshakes on the grab fast path —
// at the paper's real-Internet scale, under the same 128 MiB result
// budget. ns/op is the wall time of one complete study; peak-rss-MiB and
// the spill counters are the memory proof.
func BenchmarkScale1FullStudy(b *testing.B) {
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(fullMemLimit))
	for i := 0; i < b.N; i++ {
		cfg := experiment.Config{
			WorldSpec: world.Spec{Seed: 2020, Scale: 1.0, StreamHosts: true},
			Trials:    1,
			Origins:   origin.Set{origin.US1},
			Protocols: []proto.Protocol{proto.HTTP},
			SpillDir:  b.TempDir(),
			MemBudget: scale1Budget,
		}
		st, err := experiment.NewStudy(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := st.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportScale1(b, ds, fullRSSCeil)
	}
}

// reportScale1 validates the run and attaches the memory-proof metrics to
// the benchmark line (captured into BENCH_scale1.json by cmd/benchjson).
func reportScale1(b *testing.B, ds *results.Dataset, rssCeil int64) {
	b.Helper()
	res := ds.Scan(origin.US1, proto.HTTP, 0)
	if res == nil {
		b.Fatal("study produced no US1/HTTP scan")
	}
	rows, _ := res.SealStats()
	if rows == 0 {
		b.Fatal("sealed scan is empty")
	}
	st := res.SpillStats()
	if st.Segments == 0 {
		b.Fatalf("scan never spilled under the %d-byte budget: the benchmark is not measuring the spill path", int64(scale1Budget))
	}
	b.ReportMetric(float64(rows), "rows")
	b.ReportMetric(float64(st.Segments), "spill-segments")
	b.ReportMetric(float64(st.SpilledBytes)/(1<<20), "spilled-MiB")
	b.ReportMetric(float64(st.MergeFanIn), "merge-fanin")
	b.ReportMetric(st.MergeDuration.Seconds(), "merge-seconds")
	if rss, ok := telemetry.PeakRSSBytes(); ok {
		b.ReportMetric(float64(rss)/(1<<20), "peak-rss-MiB")
		if rss > rssCeil {
			b.Fatalf("peak RSS %d MiB exceeds the %d MiB ceiling: the budget did not hold",
				rss>>20, rssCeil>>20)
		}
	}
}
