// Golden-dataset test: the JSON a study writes is locked byte-for-byte.
//
// testdata/golden_dataset.json.gz was produced by the pre-columnar,
// reflection-based encoder (map storage + json.Encoder over row structs).
// The columnar store's streaming encoder must reproduce it exactly — same
// field order, null-vs-[] conventions, banner escaping, trailing newline —
// so that datasets written before and after the refactor stay
// interchangeable and `cmd/originscan -dataset` output is stable.
package scanorigin

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/results"
	"repro/internal/world"
)

// goldenConfig mirrors the run that produced testdata/golden_dataset.json.gz.
// Telemetry is enabled on purpose: the golden bytes predate the telemetry
// subsystem, so a registry-carrying run reproducing them byte-for-byte is
// the proof that telemetry is a pure observer.
func goldenConfig() experiment.Config {
	return experiment.Config{
		WorldSpec:      world.Spec{Seed: 2020, Scale: 0.00001},
		IncludeCarinet: true,
		Telemetry:      core.NewTelemetry(),
	}
}

func readGolden(t *testing.T) []byte {
	t.Helper()
	f, err := os.Open("testdata/golden_dataset.json.gz")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestGoldenDatasetBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a full study")
	}
	want := readGolden(t)

	// The flight recorder streams every span to disk while the study runs;
	// the golden bytes must not notice (tracing is a pure observer).
	cfg := goldenConfig()
	rec, err := core.NewRecorder(filepath.Join(t.TempDir(), core.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry.AttachRecorder(rec)
	defer func() {
		if err := cfg.Telemetry.CloseRecorder(); err != nil {
			t.Errorf("closing flight recorder: %v", err)
		}
	}()

	s, err := core.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.DS.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	if len(got) != len(want) {
		t.Fatalf("dataset JSON is %d bytes, golden is %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > len(got) {
				hi = len(got)
			}
			t.Fatalf("dataset JSON differs from golden at byte %d:\n got %q\nwant %q",
				i, got[lo:hi], want[lo:hi])
		}
	}
}

// TestGoldenDatasetRoundTrip proves the streaming decoder reads the golden
// bytes into a dataset that re-encodes to the identical bytes, and that the
// decoded records match a fresh study record-for-record.
func TestGoldenDatasetRoundTrip(t *testing.T) {
	raw := readGolden(t)
	ds, err := results.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("golden dataset does not survive decode→encode byte-identically")
	}
	if testing.Short() {
		return
	}
	s, err := core.New(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if diff := s.DS.Diff(ds); diff != "" {
		t.Fatalf("decoded golden dataset differs from fresh study: %s", diff)
	}
}
