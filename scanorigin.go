// Package scanorigin reproduces "On the Origin of Scanning: The Impact of
// Location on Internet-Wide Scans" (Wan et al., IMC 2020) as a Go library.
//
// The library contains a complete ZMap-style scanner core (cyclic-group
// address permutation, SipHash validation cookies, real IPv4/TCP packet
// serialization), ZGrab-style HTTP/TLS/SSH handshake grabbers, a
// deterministic synthetic IPv4 Internet with the paper's named networks and
// blocking behaviours, and the paper's full analysis pipeline (transient vs
// long-term classification, exclusivity, packet-loss estimation, burst
// detection, multi-origin coverage).
//
// Quick start:
//
//	ctx := context.Background()
//	study, err := scanorigin.NewStudy(ctx, scanorigin.StudyConfig{
//		WorldSpec: scanorigin.TestWorld(42),
//	})
//	if err != nil { ... }
//	if err := study.Run(ctx); err != nil { ... }
//	scanorigin.Report(ctx, os.Stdout, study)
//
// Every entry point takes a context: canceling it stops the run at the
// next stage boundary (or within one sweep batch mid-scan) with an error
// matching ErrCanceled, and Run still hands back the sealed partial
// dataset collected so far.
//
// The full reproduction (all tables and figures at 1/1000 Internet scale)
// is cmd/originscan.
package scanorigin

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/report"
	"repro/internal/results"
	"repro/internal/world"
)

// Study is a prepared or completed reproduction study. See core.Study for
// the per-figure accessors.
type Study = core.Study

// StudyConfig configures a study run.
type StudyConfig = experiment.Config

// WorldSpec configures synthetic-Internet generation.
type WorldSpec = world.Spec

// Protocol identifies HTTP, HTTPS, or SSH.
type Protocol = proto.Protocol

// Protocols.
const (
	HTTP  = proto.HTTP
	HTTPS = proto.HTTPS
	SSH   = proto.SSH
)

// OriginID identifies a scan origin.
type OriginID = origin.ID

// The study's origins.
const (
	AU      = origin.AU
	BR      = origin.BR
	DE      = origin.DE
	JP      = origin.JP
	US1     = origin.US1
	US64    = origin.US64
	Censys  = origin.CEN
	Carinet = origin.CARINET
)

// Dataset holds a study's raw scan results.
type Dataset = results.Dataset

// Typed run errors: match with errors.Is. A run error carries its
// lifecycle stage (InterruptedStage) and, for scan failures, one
// ScanError per failed (origin, protocol, trial) tuple (errors.As).
var (
	ErrCanceled     = core.ErrCanceled
	ErrScanFailed   = core.ErrScanFailed
	ErrSealConflict = core.ErrSealConflict
	ErrBadConfig    = core.ErrBadConfig
	ErrWorldGen     = core.ErrWorldGen
)

// Stage identifies a lifecycle stage; StageError and ScanError are the
// wrappers run errors arrive in.
type (
	Stage      = core.Stage
	StageError = core.StageError
	ScanError  = core.ScanError
)

// InterruptedStage reports which lifecycle stage err interrupted.
func InterruptedStage(err error) (Stage, bool) { return pipeline.InterruptedStage(err) }

// NewStudy prepares a study (generates the world and scenario).
func NewStudy(ctx context.Context, cfg StudyConfig) (*Study, error) { return core.New(ctx, cfg) }

// DefaultWorld returns the 1/1000-scale world spec used by cmd/originscan
// (≈58k HTTP, 41k HTTPS, 20k SSH hosts).
func DefaultWorld(seed uint64) WorldSpec { return world.DefaultSpec(seed) }

// TestWorld returns a small world spec (≈3k HTTP hosts) suitable for tests
// and quick experimentation.
func TestWorld(seed uint64) WorldSpec { return world.TestSpec(seed) }

// StudyOrigins returns the seven origins of the paper's main experiment.
func StudyOrigins() origin.Set { return origin.StudySet() }

// FollowUpOrigins returns the origins of the paper's follow-up experiment
// (including the three co-located Tier-1 transits).
func FollowUpOrigins() origin.Set { return origin.FollowUpSet() }

// FollowUp runs the §7 follow-up experiment: two HTTP trials including the
// co-located Tier-1 origins and a fresh-IP Censys.
func FollowUp(ctx context.Context, spec WorldSpec) (*experiment.Study, *Dataset, error) {
	return experiment.FollowUp(ctx, spec)
}

// Report renders every table and figure of the paper to w.
func Report(ctx context.Context, w io.Writer, s *Study) error { return report.All(ctx, w, s) }
