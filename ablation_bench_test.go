// Ablation benchmarks: quantify each design choice the scenario encodes by
// re-running a small single-trial HTTP study with one behaviour disabled or
// one scanning mitigation enabled, and reporting the coverage delta. These
// back DESIGN.md's "ablation benches for the design choices" item and the
// paper's §7 mitigation recommendations.
package scanorigin

import (
	"context"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/scenario"
	"repro/internal/world"
)

// ablationRun executes a one-trial HTTP study with the given tweaks and
// returns mean single-origin coverage across the study origins.
func ablationRun(b *testing.B, mutate func(*experiment.Config)) float64 {
	b.Helper()
	cfg := experiment.Config{
		WorldSpec: world.Spec{Seed: 99, Scale: 0.00005},
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := experiment.NewStudy(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := st.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return meanCoverage(ds)
}

func meanCoverage(ds *results.Dataset) float64 {
	var sum float64
	n := 0
	for _, o := range origin.StudySet() {
		sum += ds.Coverage(o, proto.HTTP, 0, false)
		n++
	}
	return sum / float64(n)
}

// BenchmarkAblationBaseline is the reference configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, nil)
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationNoBlocking removes every blocking policy: what coverage
// would look like if loss were the only cause (isolates §4 from §5).
func BenchmarkAblationNoBlocking(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) {
			c.ScenarioConfig = scenario.Config{DisableBlocking: true}
		})
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationNoOutages removes burst outages (isolates §5.3's
// contribution to transient loss).
func BenchmarkAblationNoOutages(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) {
			c.ScenarioConfig = scenario.Config{DisableOutages: true}
		})
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationNoLossOverrides removes the pathological named paths
// (Germany→Telecom Italia, China, Australia→Russia).
func BenchmarkAblationNoLossOverrides(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) {
			c.ScenarioConfig = scenario.Config{DisableLossOverrides: true}
		})
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationSingleProbe sends 1 SYN per target instead of 2.
func BenchmarkAblationSingleProbe(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) { c.Probes = 1 })
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationDelayedProbes spaces the two probes five minutes apart —
// the §7 mitigation (after Bano et al.) that decorrelates probe loss.
func BenchmarkAblationDelayedProbes(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) { c.ProbeDelay = 5 * time.Minute })
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}

// BenchmarkAblationGrabRetries gives ZGrab three connection retries — the
// §6 mitigation for probabilistic SSH blocking, applied study-wide.
func BenchmarkAblationGrabRetries(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = ablationRun(b, func(c *experiment.Config) { c.Retries = 3 })
	}
	b.ReportMetric(100*cov, "mean-cov-%")
}
