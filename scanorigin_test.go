package scanorigin

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the documented public-API path end to end:
// prepare, run, inspect, report.
func TestFacadeQuickstart(t *testing.T) {
	study, err := NewStudy(StudyConfig{
		WorldSpec: WorldSpec{Seed: 4, Scale: 0.00003},
		Trials:    1,
		Protocols: []Protocol{HTTP},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Run(); err != nil {
		t.Fatal(err)
	}
	tab := study.Fig1Coverage(HTTP)
	for _, o := range StudyOrigins() {
		cov := tab.Mean(o, false)
		if cov <= 0.5 || cov >= 1.0001 {
			t.Errorf("%v coverage %v implausible", o, cov)
		}
	}
	var b strings.Builder
	Report(&b, study)
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("Report produced no figures")
	}
}

func TestFacadeWorldSpecs(t *testing.T) {
	d := DefaultWorld(1)
	if d.Scale != 0.001 || d.Seed != 1 {
		t.Errorf("DefaultWorld = %+v", d)
	}
	tw := TestWorld(2)
	if tw.Scale >= d.Scale {
		t.Error("TestWorld should be smaller than DefaultWorld")
	}
	if len(StudyOrigins()) != 7 {
		t.Errorf("study origins = %d", len(StudyOrigins()))
	}
	if len(FollowUpOrigins()) != 8 {
		t.Errorf("follow-up origins = %d", len(FollowUpOrigins()))
	}
}

func TestFacadeFollowUp(t *testing.T) {
	_, ds, err := FollowUp(WorldSpec{Seed: 5, Scale: 0.00003})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trials != 2 {
		t.Errorf("follow-up trials = %d", ds.Trials)
	}
	if ds.Scan(Censys, HTTP, 0) == nil {
		t.Error("follow-up missing Censys scan")
	}
}
