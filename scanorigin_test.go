package scanorigin

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the documented public-API path end to end:
// prepare, run, inspect, report.
func TestFacadeQuickstart(t *testing.T) {
	ctx := context.Background()
	study, err := NewStudy(ctx, StudyConfig{
		WorldSpec: WorldSpec{Seed: 4, Scale: 0.00003},
		Trials:    1,
		Protocols: []Protocol{HTTP},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := study.Run(ctx); err != nil {
		t.Fatal(err)
	}
	tab := study.Fig1Coverage(HTTP)
	for _, o := range StudyOrigins() {
		cov := tab.Mean(o, false)
		if cov <= 0.5 || cov >= 1.0001 {
			t.Errorf("%v coverage %v implausible", o, cov)
		}
	}
	var b strings.Builder
	if err := Report(ctx, &b, study); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("Report produced no figures")
	}
}

// TestFacadeCancellation checks the re-exported error vocabulary: a canceled
// context surfaces through the facade as ErrCanceled with the interrupted
// lifecycle stage attached.
func TestFacadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewStudy(ctx, StudyConfig{
		WorldSpec: WorldSpec{Seed: 4, Scale: 0.00003},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("NewStudy under canceled ctx = %v, want ErrCanceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err %v carries no StageError", err)
	}
	if stage, ok := InterruptedStage(err); !ok || stage.String() != "worldgen" {
		t.Errorf("interrupted stage = %v (found=%v), want worldgen", stage, ok)
	}
}

func TestFacadeWorldSpecs(t *testing.T) {
	d := DefaultWorld(1)
	if d.Scale != 0.001 || d.Seed != 1 {
		t.Errorf("DefaultWorld = %+v", d)
	}
	tw := TestWorld(2)
	if tw.Scale >= d.Scale {
		t.Error("TestWorld should be smaller than DefaultWorld")
	}
	if len(StudyOrigins()) != 7 {
		t.Errorf("study origins = %d", len(StudyOrigins()))
	}
	if len(FollowUpOrigins()) != 8 {
		t.Errorf("follow-up origins = %d", len(FollowUpOrigins()))
	}
}

func TestFacadeFollowUp(t *testing.T) {
	_, ds, err := FollowUp(context.Background(), WorldSpec{Seed: 5, Scale: 0.00003})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trials != 2 {
		t.Errorf("follow-up trials = %d", ds.Trials)
	}
	if ds.Scan(Censys, HTTP, 0) == nil {
		t.Error("follow-up missing Censys scan")
	}
}
