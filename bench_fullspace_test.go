// Full-IPv4-scale sweep benchmark: the batched kernel walking a forced
// 2^24 / 2^32 scan space end to end against the simulation fabric. The
// world is built in streaming mode (no retained host slice) with the
// sparse FIB, so the 2^32 case exercises exactly the memory shape a
// full-Internet reproduction needs: announced space costs structs,
// the other ~16.7M unrouted /24 blocks cost one directory bit each.
//
// Run via `make bench-fullspace`; results land in BENCH_fullspace.json.
package scanorigin

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/world"
	"repro/internal/zmap"
)

func benchFullSpaceSweep(b *testing.B, spaceBits uint8) {
	spec := world.DefaultSpec(2020) // 1/1000-scale host population
	spec.SpaceBits = spaceBits
	spec.StreamHosts = true
	w, err := world.Build(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	sc := scenario.New(w, scenario.Config{Trials: 1, NumOrigins: 1})
	org := w.Origins.Get(origin.US1)
	fab := fabric.New(&fabric.Config{
		World:      w,
		Engine:     sc.Engine,
		IDSes:      policy.Detectors(sc.IDSes),
		Loss:       sc.Loss,
		Outages:    sc.Outages[proto.HTTP],
		Churn:      sc.Churn,
		NumOrigins: 1,
		Hosts:      sc.Hosts,
	}, org, 0)
	scanSeed := rng.NewKey(spec.Seed).Derive("scan-seed").Uint64(uint64(proto.HTTP), 0)
	zs, err := zmap.NewScanner(zmap.Config{
		SourceIPs:       org.SourceIPs,
		TargetPort:      proto.HTTP.Port(),
		Probes:          2,
		SpaceBits:       w.SpaceBits,
		Seed:            scanSeed,
		ScanDuration:    scenario.ScanDuration,
		ExpectedReplies: w.NumHosts(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st zmap.Stats
	replies := 0
	for i := 0; i < b.N; i++ {
		replies = 0
		st, err = zs.Run(context.Background(), fab, func(zmap.Reply) { replies++ })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st.Targets != w.SpaceSize() {
		b.Fatalf("sweep covered %d targets, want the full %d-address space", st.Targets, w.SpaceSize())
	}
	if replies == 0 || st.SynAcks == 0 {
		b.Fatalf("sweep found no hosts (stats %+v)", st)
	}
	b.ReportMetric(float64(replies), "replies")
	b.ReportMetric(float64(st.ProbesSent), "probes")
	b.ReportMetric(float64(w.FIB().MemFootprint())/(1<<20), "fib-MiB")
}

// BenchmarkFullSpaceSweep/space24 is the CI smoke size (16.7M addresses);
// /space32 is the full IPv4 space (4.29B addresses, ZMap's actual job).
// Run with -benchtime 1x: one sweep per size is the measurement.
func BenchmarkFullSpaceSweep(b *testing.B) {
	for _, bits := range []uint8{24, 32} {
		b.Run(fmt.Sprintf("space%d", bits), func(b *testing.B) {
			benchFullSpaceSweep(b, bits)
		})
	}
}
